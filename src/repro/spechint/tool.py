"""The SpecHint binary modification tool (Section 3.3).

Transforms a SpecVM binary into a *speculating executable*:

1. validates the paper's restrictions (single-threaded, statically linked,
   relocation information retained);
2. appends a **shadow copy** of the text section in which

   * loads/stores become ``COW_*`` instructions carrying their
     software-copy-on-write check cost (stack-relative accesses carry none
     — the speculating thread runs on a copied stack; accesses inside
     hand-optimized string routines carry a reduced, loop-optimized cost);
   * computation phases (``CWORK``) become ``SCWORK`` with the check costs
     of their declared load/store mix folded in (the source of the paper's
     *dilation factor*);
   * statically resolvable control transfers are redirected into the
     shadow; dynamically computed ones (``JR``/``CALLR``; switches over
     unrecognized jump tables) are routed through the handling routine;
   * recognized jump tables are duplicated with shadow targets;
   * ``read`` system calls become non-blocking ``SPEC_READ`` hint calls;
     other system calls become ``SPEC_SYSCALL`` (filtered at runtime);
   * calls to known output routines are stripped;

3. builds the function-address map used by the handling routine (it "can
   only map function addresses" — the ``map_all_addresses`` option lifts
   that limitation as an extension ablation);
4. records Table 3 transformation statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.driver import (
    BinaryAnalysis,
    CheckCosts,
    ElisionPlan,
    analyze_binary,
    check_costs,
)
from repro.errors import UnsupportedBinary
from repro.params import SpecHintParams
from repro.spechint.report import TransformReport
from repro.vm.binary import Binary, Function, JumpTable
from repro.vm.isa import SYS_READ, Insn, Op

#: Modelled size of the SpecHint auxiliary objects linked into every
#: speculating executable (dynamic allocator, handling routine, restart
#: routine, optimized string routines — "generated from 4,000 lines of
#: assembly" in the paper).
SPECHINT_RUNTIME_BYTES = 96 * 1024

#: Modelled size of the threading support libraries (the paper links the
#: POSIX pthreads library into otherwise statically linked binaries).
THREADING_LIB_BYTES = 420 * 1024

#: Modelled instruction expansion of one wrapped load/store: the check
#: sequence around each shadow load/store (address mask, table lookup,
#: conditional branch, redirect) — about five extra instructions.
COW_CHECK_INSNS = 5


@dataclass
class SpecMeta:
    """Metadata the runtime needs, attached to the transformed binary."""

    shadow_base: int
    original_text_len: int
    #: Original function entry index -> shadow entry index.
    function_map: Dict[int, int]
    params: SpecHintParams
    map_all_addresses: bool = False
    report: Optional[TransformReport] = None
    #: Names of output routines whose call sites were stripped.
    stripped_routines: List[str] = field(default_factory=list)
    #: Static-analysis results, when the tool ran with ``optimize=True``.
    analysis: Optional[BinaryAnalysis] = None
    #: Hint disclosure sites: original SYS_READ index -> shadow SPEC_READ
    #: index.  Security reports key leak findings to these sites.
    hint_sites: Dict[int, int] = field(default_factory=dict)

    def to_shadow(self, original_index: int) -> int:
        """Map any original text index to its shadow twin (mechanically
        possible because the shadow is instruction-for-instruction; the
        *handling routine* still restricts itself to function entries
        unless map_all_addresses is set)."""
        return original_index + self.shadow_base


class SpeculatingBinary(Binary):
    """A transformed binary: original text + shadow text + spec metadata."""

    def __init__(self, *args: object, spec_meta: SpecMeta, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.spec_meta = spec_meta


class SpecHintTool:
    """The binary modification tool."""

    def __init__(
        self,
        params: Optional[SpecHintParams] = None,
        map_all_addresses: bool = False,
        optimize: bool = False,
    ) -> None:
        self.params = params or SpecHintParams()
        #: Extension ablation: allow the handling routine to map *any*
        #: original-text address, not just function entries.
        self.map_all_addresses = map_all_addresses
        #: Run the static-analysis pass and apply its elision plan (skip
        #: provably unnecessary COW wrappers, redirect provably resolved
        #: computed transfers).  Under ``map_all_addresses`` the analysis
        #: still runs for its report but its plan is empty: garbage jumps
        #: can then enter functions mid-body, which breaks the entry-state
        #: assumptions every per-function fact rests on.
        self.optimize = optimize

    # ------------------------------------------------------------------ API

    def transform(self, binary: Binary) -> SpeculatingBinary:
        """Produce the speculating executable for ``binary``."""
        started = time.perf_counter()
        self._validate(binary)

        shadow_base = len(binary.text)
        counters = _TransformCounters()
        func_names = self._function_name_by_index(binary)

        analysis: Optional[BinaryAnalysis] = None
        plan = ElisionPlan()
        if self.optimize:
            analysis = analyze_binary(
                binary, self.params, self.map_all_addresses
            )
            plan = analysis.elision_plan

        # Recognized jump tables get shadow twins; remember the id mapping.
        jump_tables: List[JumpTable] = list(binary.jump_tables)
        shadow_table_ids: Dict[int, int] = {}
        for table in binary.jump_tables:
            if table.recognized:
                twin = JumpTable(
                    len(jump_tables),
                    [t + shadow_base for t in table.targets],
                    recognized=True,
                )
                jump_tables.append(twin)
                shadow_table_ids[table.table_id] = twin.table_id
                counters.jump_tables_remapped += 1
            else:
                counters.jump_tables_unrecognized += 1

        shadow_text: List[Insn] = []
        hint_sites: Dict[int, int] = {}
        for index, insn in enumerate(binary.text):
            func = func_names[index]
            shadow_text.append(
                self._transform_insn(
                    index, insn, shadow_base, binary, func, shadow_table_ids,
                    plan, counters,
                )
            )
            if insn.op is Op.SYSCALL and insn.c == SYS_READ:
                hint_sites[index] = index + shadow_base

        text = list(binary.text) + shadow_text
        functions = list(binary.functions) + [
            Function(f"{f.name}@shadow", f.entry + shadow_base, f.end + shadow_base)
            for f in binary.functions
        ]
        function_map = {f.entry: f.entry + shadow_base for f in binary.functions}

        elapsed = time.perf_counter() - started
        report = TransformReport(
            binary_name=binary.name,
            modification_time_s=elapsed,
            original_size_bytes=self.original_size(binary),
            transformed_size_bytes=self.transformed_size(binary, counters),
            original_insns=len(binary.text),
            shadow_insns=len(shadow_text),
            loads_wrapped=counters.loads_wrapped,
            stores_wrapped=counters.stores_wrapped,
            stack_relative_skipped=counters.stack_relative_skipped,
            cwork_dilated=counters.cwork_dilated,
            static_transfers_redirected=counters.static_redirected,
            dynamic_transfers_routed=counters.dynamic_routed,
            jump_tables_remapped=counters.jump_tables_remapped,
            jump_tables_unrecognized=counters.jump_tables_unrecognized,
            output_calls_stripped=counters.output_calls_stripped,
            reads_substituted=counters.reads_substituted,
            syscalls_guarded=counters.syscalls_guarded,
            analysis_applied=analysis is not None,
            stores_elided_dead=counters.stores_elided_dead,
            loads_unchecked_dead=counters.loads_unchecked_dead,
            stack_proved_unchecked=counters.stack_proved_unchecked,
            heap_stores_elided=counters.heap_stores_elided,
            transfers_statically_resolved=counters.transfers_resolved_static,
            check_cycles_baseline=counters.check_cycles_baseline,
            check_cycles_emitted=counters.check_cycles_emitted,
        )

        meta = SpecMeta(
            shadow_base=shadow_base,
            original_text_len=len(binary.text),
            function_map=function_map,
            params=self.params,
            map_all_addresses=self.map_all_addresses,
            report=report,
            stripped_routines=sorted(binary.output_routines),
            analysis=analysis,
            hint_sites=hint_sites,
        )

        return SpeculatingBinary(
            binary.name,
            text,
            binary.data,
            dict(binary.data_symbols),
            functions,
            jump_tables,
            binary.entry_point,
            output_routines=set(binary.output_routines),
            optimized_stdlib=set(binary.optimized_stdlib),
            secret_symbols=set(binary.secret_symbols),
            spec_meta=meta,
        )

    # -------------------------------------------------------------- pieces

    def _validate(self, binary: Binary) -> None:
        if not binary.has_relocations:
            raise UnsupportedBinary(
                f"{binary.name}: relocation information was stripped"
            )
        if not binary.single_threaded:
            raise UnsupportedBinary(f"{binary.name}: binary is multithreaded")
        if not binary.statically_linked:
            raise UnsupportedBinary(f"{binary.name}: binary is dynamically linked")
        if getattr(binary, "spec_meta", None) is not None:
            raise UnsupportedBinary(f"{binary.name}: already transformed")

    @staticmethod
    def _function_name_by_index(binary: Binary) -> List[Optional[str]]:
        names: List[Optional[str]] = [None] * len(binary.text)
        for func in binary.functions:
            for i in range(func.entry, func.end):
                names[i] = func.name
        return names

    def _check_costs(self, binary: Binary, func: Optional[str]) -> CheckCosts:
        """COW check cycle costs for loads and stores within ``func``."""
        return check_costs(
            self.params, func is not None and func in binary.optimized_stdlib
        )

    def _transform_insn(
        self,
        index: int,
        insn: Insn,
        shadow_base: int,
        binary: Binary,
        func: Optional[str],
        shadow_table_ids: Dict[int, int],
        plan: ElisionPlan,
        counters: "_TransformCounters",
    ) -> Insn:
        op = insn.op
        load_cost, store_cost = self._check_costs(binary, func)

        if op in (Op.LOAD, Op.LOADB, Op.STORE, Op.STOREB):
            is_store = op in (Op.STORE, Op.STOREB)
            new_op = {
                Op.LOAD: Op.COW_LOAD,
                Op.LOADB: Op.COW_LOADB,
                Op.STORE: Op.COW_STORE,
                Op.STOREB: Op.COW_STOREB,
            }[op]
            if insn.get_meta("stack"):
                # Stack accesses need no check: the stack was pre-copied at
                # restart time (paper footnote 3).
                check = 0
                counters.stack_relative_skipped += 1
            else:
                check = store_cost if is_store else load_cost
                counters.check_cycles_baseline += check
                if index in plan.dead:
                    # Speculation can never reach this site.  Stores keep
                    # their plain form (the armed write guard is the
                    # backstop if the analysis were ever wrong); loads keep
                    # COW semantics but drop the check cycles.
                    if is_store:
                        counters.stores_elided_dead += 1
                        return insn.clone()
                    counters.loads_unchecked_dead += 1
                    check = 0
                elif is_store and index in plan.heap_stores:
                    # Provably confined to the speculative heap: the write
                    # guard explicitly allows direct stores there.
                    counters.heap_stores_elided += 1
                    return insn.clone()
                elif index in plan.stack_proved:
                    # Provably stack-relative (though not assembler-marked):
                    # the pre-copied stack needs no check.
                    counters.stack_proved_unchecked += 1
                    check = 0
                else:
                    counters.check_cycles_emitted += check
                    if is_store:
                        counters.stores_wrapped += 1
                    else:
                        counters.loads_wrapped += 1
            out = insn.clone()
            out.op = new_op
            out.d = check
            return out

        if op is Op.CWORK:
            dilation = insn.b * load_cost + insn.c * store_cost
            counters.check_cycles_baseline += dilation
            counters.check_cycles_emitted += dilation
            counters.cwork_dilated += 1
            return Insn(Op.SCWORK, insn.a + dilation, 0, 0, 0, insn.meta)

        if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP):
            out = insn.clone()
            out.c = insn.c + shadow_base
            counters.static_redirected += 1
            return out

        if op is Op.CALL:
            target_name = insn.get_meta("call_target")
            if target_name in binary.output_routines:
                # Strip output routine calls from the shadow code.
                counters.output_calls_stripped += 1
                return Insn(Op.NOP, meta=insn.meta)
            out = insn.clone()
            out.c = insn.c + shadow_base
            counters.static_redirected += 1
            return out

        if op is Op.JR:
            target = plan.resolved.get(index)
            if target is not None:
                # The analysis proved the only possible target: jump
                # straight to its shadow twin instead of routing through
                # the handling routine.
                counters.transfers_resolved_static += 1
                counters.static_redirected += 1
                return Insn(Op.JMP, 0, 0, target + shadow_base,
                            meta=insn.meta)
            counters.dynamic_routed += 1
            out = insn.clone()
            out.op = Op.SPEC_JR
            return out

        if op is Op.CALLR:
            target = plan.resolved.get(index)
            if target is not None:
                callee = binary.function_at_entry(target)
                if callee is not None and callee.name in binary.output_routines:
                    # A resolved indirect call to an output routine is
                    # stripped exactly like a direct one.
                    counters.output_calls_stripped += 1
                    return Insn(Op.NOP, meta=insn.meta)
                counters.transfers_resolved_static += 1
                counters.static_redirected += 1
                meta = dict(insn.meta) if insn.meta else {}
                if callee is not None:
                    meta["call_target"] = callee.name
                return Insn(Op.CALL, 0, 0, target + shadow_base, meta=meta)
            counters.dynamic_routed += 1
            out = insn.clone()
            out.op = Op.SPEC_CALLR
            return out

        if op is Op.SWITCH:
            out = insn.clone()
            shadow_id = shadow_table_ids.get(insn.c)
            if shadow_id is not None:
                out.c = shadow_id
            else:
                out.op = Op.SPEC_SWITCH
                counters.dynamic_routed += 1
            return out

        if op is Op.SYSCALL:
            if insn.c == SYS_READ:
                counters.reads_substituted += 1
                return Insn(Op.SPEC_READ, meta=insn.meta)
            counters.syscalls_guarded += 1
            out = insn.clone()
            out.op = Op.SPEC_SYSCALL
            return out

        if op is Op.HALT:
            # HALT is an implicit exit(0): guard it like a syscall.
            counters.syscalls_guarded += 1
            return Insn(Op.SPEC_SYSCALL, 0, 0, 1, meta=insn.meta)  # SYS_EXIT

        # Everything else (ALU, LI/LA, NOP...) copies verbatim.  LA of a
        # function address intentionally keeps the *original* entry: the
        # constant flows through data like any other value, and the
        # handling routine maps it when it is used as a jump target.
        return insn.clone()

    # -------------------------------------------------------- size modelling

    @staticmethod
    def original_size(binary: Binary) -> int:
        """Original executable size (honours declared sizes, see below)."""
        declared = getattr(binary, "declared_size_bytes", None)
        if declared:
            return int(declared)
        return binary.size_bytes

    def transformed_size(self, binary: Binary, counters: "_TransformCounters") -> int:
        """Model of the speculating executable's size.

        The shadow text grows by the inserted check sequences; the SpecHint
        auxiliary objects and threading libraries are added.  When the app
        declares a full-scale size (our benchmark programs declare the
        paper binaries' sizes, since a SpecVM program is far smaller than
        a real statically-linked Alpha executable), the shadow expansion is
        applied to the declared text proportionally.
        """
        original = self.original_size(binary)
        mem_ops = counters.loads_wrapped + counters.stores_wrapped
        plain = max(1, len(binary.text))
        expansion_ratio = (plain + mem_ops * COW_CHECK_INSNS) / plain

        declared = getattr(binary, "declared_size_bytes", None)
        if declared:
            text_fraction = getattr(binary, "declared_text_fraction", 0.7)
            shadow_bytes = int(declared * text_fraction * expansion_ratio)
        else:
            shadow_bytes = int(binary.text_bytes * expansion_ratio)
        return original + shadow_bytes + SPECHINT_RUNTIME_BYTES + THREADING_LIB_BYTES


class _TransformCounters:
    """Mutable counters accumulated during one transformation."""

    __slots__ = (
        "loads_wrapped",
        "stores_wrapped",
        "stack_relative_skipped",
        "cwork_dilated",
        "static_redirected",
        "dynamic_routed",
        "jump_tables_remapped",
        "jump_tables_unrecognized",
        "output_calls_stripped",
        "reads_substituted",
        "syscalls_guarded",
        "stores_elided_dead",
        "loads_unchecked_dead",
        "stack_proved_unchecked",
        "heap_stores_elided",
        "transfers_resolved_static",
        "check_cycles_baseline",
        "check_cycles_emitted",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)
