"""SpecHint: automatic I/O hint generation through speculative execution.

This package is the paper's primary contribution, reimplemented over the
SpecVM substrate:

* :mod:`repro.spechint.tool` — the binary modification tool: builds shadow
  code with software-enforced copy-on-write around loads/stores, redirects
  control transfers, substitutes hint calls for reads, strips output
  routines, and emits the transformation statistics of Table 3;
* :mod:`repro.spechint.cow` — the software copy-on-write map (configurable
  region size, 1024 B default);
* :mod:`repro.spechint.hintlog` — the hint log through which the original
  and speculating threads cooperate to detect off-track speculation;
* :mod:`repro.spechint.runtime` — the per-process runtime: speculative
  reads and hint issue, user-space emulation of open/close/lseek against a
  speculative fd table, the restart protocol, signal handling, and the
  Section 5 cancel-based throttle;
* :mod:`repro.spechint.report` — transformation statistics;
* :mod:`repro.spechint.auditor` — the isolation auditor: write-containment
  guard, tamper-evident audit table, restart-boundary digests, and the
  bounded quarantine imposed on violations.
"""

from repro.spechint.auditor import (
    AuditRecord,
    AuditTable,
    IsolationAuditor,
    IsolationQuarantine,
)
from repro.spechint.cow import CowMap
from repro.spechint.hintlog import HintLog, HintLogEntry
from repro.spechint.report import TransformReport
from repro.spechint.runtime import SpecProcessState
from repro.spechint.throttle import SpeculationThrottle
from repro.spechint.tool import SpecHintTool, SpecMeta, SpeculatingBinary

__all__ = [
    "AuditRecord",
    "AuditTable",
    "IsolationAuditor",
    "IsolationQuarantine",
    "CowMap",
    "HintLog",
    "HintLogEntry",
    "TransformReport",
    "SpecProcessState",
    "SpeculationThrottle",
    "SpecHintTool",
    "SpecMeta",
    "SpeculatingBinary",
]
