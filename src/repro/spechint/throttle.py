"""Cancel-triggered speculation throttle (Section 5, future work).

The paper reports that "even a simple, ad-hoc mechanism — disabling
speculative execution for a brief time after some number of cancel requests
have been issued — was sufficient to eliminate the performance penalty of
performing speculative execution in Gnuld when the I/O system offered no
parallelism."

The throttle counts cancel requests that actually cancelled outstanding
hints (erroneous speculation); after ``cancel_limit`` of them, restarts are
suppressed for the next ``disable_reads`` read calls.  A ``cancel_limit``
of 0 disables the mechanism (the paper's default configuration).
"""

from __future__ import annotations


class SpeculationThrottle:
    """Ad-hoc erroneous-speculation damper."""

    def __init__(self, cancel_limit: int, disable_reads: int) -> None:
        self.cancel_limit = cancel_limit
        self.disable_reads = disable_reads
        self._recent_cancels = 0
        self._disabled_remaining = 0
        #: Lifetime statistics.
        self.trips = 0
        self.suppressed_restarts = 0

    @property
    def enabled(self) -> bool:
        return self.cancel_limit > 0

    @property
    def currently_disabled(self) -> bool:
        return self._disabled_remaining > 0

    def note_cancel(self, hints_cancelled: int) -> None:
        """Record a CANCEL_ALL that cancelled ``hints_cancelled`` hints."""
        if not self.enabled or hints_cancelled <= 0:
            return
        self._recent_cancels += 1
        if self._recent_cancels >= self.cancel_limit:
            self._recent_cancels = 0
            self._disabled_remaining = self.disable_reads
            self.trips += 1

    def allow_restart(self) -> bool:
        """Called per off-track read: may speculation restart now?

        While disabled, each call counts down the disable window.
        """
        if not self.enabled:
            return True
        if self._disabled_remaining > 0:
            self._disabled_remaining -= 1
            self.suppressed_restarts += 1
            return False
        return True
