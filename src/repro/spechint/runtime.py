"""Per-process SpecHint runtime (Sections 3.2.1 and 3.2.2).

This module is the runtime half of the contribution: everything the
SpecHint auxiliary objects do in the paper.

Original-thread side (called from the kernel's read path):

* check the next hint log entry before each read (cheap, observable cost);
* on a mismatch or an empty log, save the registers and set the restart
  flag *before* issuing the read, so the speculating thread can restart
  while the original thread is stalled.

Speculating-thread side (called from the machine's shadow opcodes):

* ``SPEC_READ`` — append a prediction to the hint log, issue a TIP hint
  for data-returning reads, copy any already-cached bytes into the (COW)
  destination buffer, and continue without blocking;
* ``SPEC_SYSCALL`` — enforce the paper's side-effect rules: fstat/sbrk and
  the hint ioctls are allowed; open/close/lseek are emulated in user space
  against a *speculative fd table*; writes are suppressed; anything else
  parks speculation;
* restart protocol — cancel outstanding hints (``TIPIO_CANCEL_ALL``),
  clear the COW map, copy the original thread's stack, load the saved
  registers, and jump to the shadow instruction after the blocking read;
* signals — faults during speculation are counted and park the thread
  until the next restart.

The speculative fd table is how hints can be generated for files the
original thread has not opened yet (Agrep's whole benefit depends on it):
a speculative ``open`` binds a pseudo-fd to the named file, and speculative
reads on pseudo-fds issue ``TIPIO_SEG`` (by name) hints, while reads on
inherited real fds issue ``TIPIO_FD_SEG`` hints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import IsolationViolation
from repro.faults.watchdog import SpeculationWatchdog
from repro.fs.filesystem import Inode
from repro.params import BLOCK_SIZE
from repro.sim import metrics
from repro.trace.tracer import CAT_SPEC, TID_ORIGINAL, TID_SPECULATING
from repro.spechint.auditor import IsolationAuditor, IsolationQuarantine
from repro.spechint.cow import CowMap
from repro.spechint.hintlog import HintLog
from repro.spechint.throttle import SpeculationThrottle
from repro.spechint.tool import SpecMeta
from repro.tip.hints import Ioctl
from repro.vm.isa import (
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    SYS_CANCEL_ALL,
    SYS_CLOSE,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_HINT_FD_SEG,
    SYS_HINT_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_SBRK,
    SYS_WRITE,
    Reg,
    to_signed,
)
from repro.vm.machine import SpeculationFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.kernel.thread import Thread

_STOPPED = -1

V0 = int(Reg.v0)
A0 = int(Reg.a0)
A1 = int(Reg.a1)
A2 = int(Reg.a2)
SP = int(Reg.sp)

#: First pseudo file descriptor handed out by speculative open().
FIRST_PSEUDO_FD = 1000

#: Cycles for the cheap bookkeeping around each speculative read.
SPEC_READ_BASE_CYCLES = 80


class SpecFd:
    """Speculating thread's view of one file descriptor."""

    __slots__ = ("inode", "offset", "pseudo", "path")

    def __init__(self, inode: Optional[Inode], offset: int, pseudo: bool, path: str) -> None:
        self.inode = inode
        self.offset = offset
        #: True when this fd exists only speculatively (spec open()).
        self.pseudo = pseudo
        self.path = path


class SpecProcessState:
    """All SpecHint state of one transformed process."""

    def __init__(
        self,
        kernel: "Kernel",
        process: "Process",
        spec_thread: "Thread",
        meta: SpecMeta,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.thread = spec_thread
        self.meta = meta
        self.params = meta.params

        #: Isolation auditor + quarantine (the speculation safety net).
        #: The auditor observes; the quarantine is the graded response.
        self.auditor: Optional[IsolationAuditor] = None
        if meta.params.isolation_audit:
            self.auditor = IsolationAuditor(
                process, capacity=meta.params.audit_table_capacity
            )
        self.quarantine_state = IsolationQuarantine(
            base_reads=meta.params.quarantine_base_reads,
            max_violations=meta.params.quarantine_max_violations,
        )
        self.isolation_violations = 0

        self.cow = CowMap(process.mem, meta.params, vmstat=process.vmstat,
                          auditor=self.auditor, stats=kernel.stats,
                          tracer=kernel.tracer)
        self.hint_log = HintLog()
        self.throttle = SpeculationThrottle(
            meta.params.throttle_cancel_limit, meta.params.throttle_disable_reads
        )
        #: The safety net: disables speculation for the rest of the run when
        #: it is demonstrably doing more harm than good (restart storms,
        #: fault storms, persistently wrong hint logs).
        self.watchdog = SpeculationWatchdog(
            restart_limit=meta.params.watchdog_restart_limit,
            fault_limit=meta.params.watchdog_fault_limit,
            min_accuracy=meta.params.watchdog_min_accuracy,
            accuracy_window=meta.params.watchdog_accuracy_window,
        )

        #: Restart handshake (Section 3.2.2).
        self.restart_flag = False
        self._saved_regs: Optional[List[int]] = None
        self._saved_resume_pc = 0  # original-text index after the read
        self._saved_read_fd = -1
        self._saved_read_offset = 0
        self._saved_read_n = 0

        #: Speculative fd table.
        self.spec_fds: Dict[int, SpecFd] = {}
        self._next_pseudo_fd = FIRST_PSEUDO_FD

        #: Lifetime statistics.
        self.restarts = 0
        self.signals = 0
        self.cancel_calls = 0
        self.hints_issued = 0
        self.predictions = 0
        self.parks: Dict[str, int] = {}

        # Surface what the static-analysis pass did to this binary, and
        # chain it into the audit table: elided COW wrappers are exactly
        # the stores the runtime write guard must now backstop.
        report = meta.report
        if report is not None and report.analysis_applied:
            stats = kernel.stats
            stats.counter(metrics.SPECHINT_ANALYSIS_STORES_ELIDED).add(
                report.stores_elided
            )
            stats.counter(metrics.SPECHINT_ANALYSIS_LOADS_UNCHECKED).add(
                report.loads_unchecked_dead
            )
            stats.counter(metrics.SPECHINT_ANALYSIS_TRANSFERS_RESOLVED).add(
                report.transfers_statically_resolved
            )
            saved = report.check_cycles_baseline - report.check_cycles_emitted
            stats.counter(metrics.SPECHINT_ANALYSIS_CHECK_CYCLES_SAVED).add(saved)
            if self.auditor is not None:
                self.auditor.table.record(
                    "analysis",
                    f"elided={report.stores_elided} "
                    f"unchecked={report.loads_unchecked_dead} "
                    f"resolved={report.transfers_statically_resolved} "
                    f"cycles_saved={saved}",
                )

    # ------------------------------------------------- original-thread side

    def before_read(self, thread: "Thread", fd_num: int, length: int) -> int:
        """Hint-log check before the original thread issues a read.

        Returns the (observable) cycle cost.  The whole cost — check plus
        any restart request — is the "checks" phase of the stall breakdown.
        """
        cost = self._before_read_inner(thread, fd_num, length)
        self.kernel.stats.counter(metrics.SPEC_CHECK_CYCLES).add(cost)
        return cost

    def _before_read_inner(self, thread: "Thread", fd_num: int, length: int) -> int:
        cpu = self.kernel.config.cpu
        cost = cpu.hintlog_check_cycles
        process = self.process

        if self.watchdog.disabled:
            return cost  # vanilla execution for the rest of the run

        if self.params.watchdog_suspend_when_degraded:
            # Degraded-mode load shedding: while the array is rebuilding a
            # dead disk, speculation's prefetch appetite only competes with
            # reconstruction and resilver traffic.  Suspend (resumably) for
            # the duration; the spec thread benches itself at its next poll.
            transition = self.watchdog.set_degraded(self.kernel.array.degraded)
            if transition == "suspended":
                self.kernel.stats.counter(metrics.SPEC_DEGRADED_SUSPENSIONS).add()
                self.restart_flag = True
                if self.kernel.tracer.enabled:
                    self.kernel.tracer.instant(
                        CAT_SPEC, "degraded_suspend", tid=TID_ORIGINAL,
                    )
            elif transition == "resumed":
                self.kernel.stats.counter(metrics.SPEC_DEGRADED_RESUMES).add()
                if self.kernel.tracer.enabled:
                    self.kernel.tracer.instant(
                        CAT_SPEC, "degraded_resume", tid=TID_ORIGINAL,
                    )
                # Fall through: the stale hint log will mismatch and the
                # normal restart-request path wakes the spec thread with a
                # freshly captured boundary.
        if self.watchdog.suspended:
            return cost

        if self.quarantine_state.active:
            # Bounded-restart quarantine: speculation stays benched for a
            # window of reads after an isolation violation (forever, when
            # the violation persisted).  The original thread runs vanilla.
            if not self.quarantine_state.tick_read():
                return cost
            # This read released the quarantine: resume the normal path —
            # the stale hint log will mismatch and request a restart.
            self.kernel.stats.counter(metrics.SPEC_QUARANTINE_RELEASED).add()
            if self.auditor is not None:
                self.auditor.table.record("quarantine_released")

        fdstate = process.fds.get(fd_num)
        ino = fdstate.inode.ino if fdstate is not None and fdstate.inode else -1
        offset = fdstate.offset if fdstate is not None else 0

        matched = self.hint_log.check_and_consume(ino, offset, length)
        injector = self.kernel.injector
        if matched and injector is not None and injector.force_divergence():
            # Wrong-path exercise: the check is forced to judge speculation
            # off track even though the entry matched (restart-storm chaos).
            matched = False

        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                CAT_SPEC,
                "hint_check.match" if matched else "hint_check.divergence",
                tid=TID_ORIGINAL, ino=ino, offset=offset, length=length,
            )

        if self.watchdog.note_check(matched):
            self._disable_speculation()
            return cost
        if matched:
            self._capture_boundary()
            return cost  # speculation may still be on track

        # Off track (strayed or behind): request a restart.
        if not self.throttle.allow_restart():
            self.kernel.stats.counter(metrics.SPEC_THROTTLE_SUPPRESSED).add()
            self._capture_boundary()
            return cost

        cost += cpu.restart_request_cycles
        self._saved_regs = thread.snapshot_regs()
        self._saved_resume_pc = thread.pc + 1
        self._saved_read_fd = fd_num
        self._saved_read_offset = offset
        if fdstate is not None and fdstate.inode is not None:
            self._saved_read_n = min(length, max(0, fdstate.inode.size - offset))
        else:
            self._saved_read_n = 0
        self.restart_flag = True
        self.kernel.stats.counter(metrics.SPEC_RESTART_REQUESTS).add()
        self._capture_boundary()
        self._wake_spec_thread()
        return cost

    def _capture_boundary(self) -> None:
        """Snapshot the restart-boundary digests at this read call.  The
        last capture before a restart is the blocking read itself, so the
        speculating thread verifies against exactly the state the original
        thread stalled with."""
        if self.auditor is not None:
            self.auditor.capture_boundary(self._saved_regs)

    def _wake_spec_thread(self) -> None:
        from repro.kernel.thread import ThreadState

        if (
            self.watchdog.disabled
            or self.watchdog.suspended
            or self.quarantine_state.active
        ):
            return
        thread = self.thread
        if thread.state is ThreadState.SPEC_IDLE:
            thread.state = ThreadState.RUNNABLE
            # Guarantee the restart-flag poll fires before any instruction
            # executes (the parked pc may point into the weeds).
            thread.poll_counter = self.params.restart_poll_interval
            thread.cwork_remaining = 0

    # ------------------------------------------------ speculating-thread side

    def perform_restart(self, thread: "Thread") -> int:
        """Restart speculation from the saved original-thread state.

        Returns the cycle cost (cancel call + COW clear + stack copy +
        register reload), charged to the speculating thread, or ``_STOPPED``
        when the watchdog disabled speculation instead of restarting it.
        """
        self.restart_flag = False
        if self.watchdog.disabled:
            return self.park(thread, "watchdog_disabled")
        if self.quarantine_state.active:
            return self.park(thread, "quarantined")
        if self.watchdog.suspended:
            # Degraded-mode shedding, not a safety trip: bench until the
            # rebuild finishes (the original thread's checks drive resume).
            return self.park(thread, "degraded_mode")
        if self.watchdog.note_restart():
            self._disable_speculation()
            return self.park(thread, "watchdog_disabled")

        # Isolation audit, *before* any saved state is consumed: the audit
        # chain must verify and the non-shadow state (fd bindings, heap
        # break, saved registers) must be exactly what the original thread
        # captured.  A violation raises and quarantines (see the machine's
        # IsolationViolation handler) without touching the original thread.
        if self.auditor is not None:
            self.auditor.verify_restart_boundary(self._saved_regs)

        self.restarts += 1
        self.kernel.stats.counter(metrics.SPEC_RESTARTS).add()
        if self.kernel.tracer.enabled:
            self.kernel.tracer.instant(
                CAT_SPEC, "restart", tid=TID_SPECULATING,
                nth=self.restarts, resume_pc=self._saved_resume_pc,
            )

        # Cancel outstanding hints (the CANCEL_ALL call added to TIP).
        cancelled = self.kernel.manager.cancel_all(self.process.pid)
        self.cancel_calls += 1
        self.kernel.stats.counter(metrics.SPEC_CANCEL_CALLS).add()
        self.throttle.note_cancel(cancelled)

        # The restart's safety depends on the cancel having drained the
        # hint queue: a leaked hint would keep prefetching down the
        # abandoned path while the log restarts from scratch.
        outstanding = self.kernel.manager.outstanding_hints(self.process.pid)
        if outstanding:
            raise IsolationViolation(
                f"TIPIO_CANCEL_ALL left {outstanding} hint(s) outstanding "
                f"before restart"
            )
        self.kernel.stats.counter(metrics.SPEC_CANCEL_DRAIN_VERIFIED).add()
        if self.auditor is not None:
            self.auditor.table.record("restart", f"cancelled={cancelled}")

        self.cow.clear()
        self.hint_log.reset()

        # Rebuild the speculative fd table from the real one, applying the
        # effect of the read the original thread is blocked on.
        self.spec_fds = {
            fd: SpecFd(state.inode, state.offset, False, state.path)
            for fd, state in self.process.fds.items()
            if state.inode is not None
        }
        saved_fd = self._saved_read_fd
        if saved_fd in self.spec_fds:
            resumed = self._saved_read_offset + self._saved_read_n
            if self.spec_fds[saved_fd].offset < resumed:
                self.spec_fds[saved_fd].offset = resumed

        if self._saved_regs is None:
            # No saved state (cannot normally happen: the flag is only set
            # by before_read, which saves first).  Park defensively.
            self.park(thread, "no_saved_state")
            return self.params.restart_fixed_cycles

        thread.load_regs(self._saved_regs)
        thread.regs[V0] = self._saved_read_n  # the read's (predicted) result
        thread.pc = self.meta.to_shadow(self._saved_resume_pc)
        thread.poll_counter = 0
        thread.cwork_remaining = 0

        # Copy the original thread's stack (pre-copied COW regions).
        sp = thread.regs[SP]
        stack_bytes = 0
        mem = self.process.mem
        if mem.stack_limit <= sp < mem.stack_top:
            # (sp == stack_top means an empty stack: nothing to copy, and
            # precopy_range rejects degenerate ranges by design.)
            stack_bytes = self.cow.precopy_range(sp, mem.stack_top - sp)

        cost = self.params.restart_fixed_cycles + int(
            stack_bytes * self.params.restart_stack_copy_cycles_per_byte
        )
        return cost

    def spec_read(self, thread: "Thread") -> int:
        """SPEC_READ: hint + predict + non-blocking data peek."""
        regs = thread.regs
        fd_num = regs[A0]
        buf = regs[A1]
        length = regs[A2]
        cost = SPEC_READ_BASE_CYCLES
        cpu = self.kernel.config.cpu

        sfd = self.spec_fds.get(fd_num)
        if sfd is None or sfd.inode is None:
            raise SpeculationFault(f"speculative read on unknown fd {fd_num}")

        inode = sfd.inode
        offset = sfd.offset
        n = min(length, max(0, inode.size - offset))

        # Record the prediction; the original thread matches on the
        # requested length at the same offset.
        hinted = n > 0
        self.hint_log.append(inode.ino, offset, length, hinted)
        self.predictions += 1

        if hinted:
            via = Ioctl.TIPIO_SEG if sfd.pseudo else Ioctl.TIPIO_FD_SEG
            self.kernel.hint_from(self.process.pid, inode, offset, n, via)
            self.hints_issued += 1
            self.kernel.stats.counter(metrics.SPEC_HINTS_ISSUED).add()
            self.kernel.stats.distribution(metrics.APP_HINT_CALL_CPU).observe(
                thread.cpu_cycles
            )
            cost += cpu.syscall_cycles + cpu.hint_call_cycles

            # Copy whatever is already cached into the (COW) buffer so that
            # speculation can follow data dependencies once the data has
            # arrived; uncached portions keep their stale contents.
            cost += self._peek_copy(inode, offset, n, buf)

        regs[V0] = n
        sfd.offset = offset + n
        thread.pc += 1
        return cost

    def _peek_copy(self, inode: Inode, offset: int, n: int, buf: int) -> int:
        """Copy cached blocks of [offset, offset+n) into the buffer copy."""
        cpu = self.kernel.config.cpu
        manager = self.kernel.manager
        cost = 0
        first = offset // BLOCK_SIZE
        last = (offset + n - 1) // BLOCK_SIZE
        for file_block in range(first, last + 1):
            cost += 4  # residency probe
            if not manager.peek_valid(inode, file_block):
                continue
            block_start = max(offset, file_block * BLOCK_SIZE)
            block_end = min(offset + n, (file_block + 1) * BLOCK_SIZE)
            payload = inode.read_at(block_start, block_end - block_start)
            cost += self.cow.write_bytes(buf + (block_start - offset), payload)
            cost += int(len(payload) * cpu.read_copy_cycles_per_byte)
        return cost

    def spec_syscall(self, thread: "Thread", num: int) -> int:
        """SPEC_SYSCALL: the side-effect filter of Section 3.2.1."""
        regs = thread.regs
        cpu = self.kernel.config.cpu

        if num == SYS_OPEN:
            # User-space emulation against the speculative fd table.
            path_bytes = self.cow.read_cstring(regs[A0])
            try:
                path = path_bytes.decode("ascii")
            except UnicodeDecodeError:
                path = ""
            inode = self.kernel.fs.lookup_or_none(path) if path else None
            if inode is None:
                regs[V0] = (1 << 64) - 1
            else:
                fd = self._next_pseudo_fd
                self._next_pseudo_fd += 1
                self.spec_fds[fd] = SpecFd(inode, 0, True, path)
                regs[V0] = fd
            thread.pc += 1
            return cpu.namei_cycles // 4  # user-space lookup, no trap

        if num == SYS_CLOSE:
            self.spec_fds.pop(regs[A0], None)
            regs[V0] = 0
            thread.pc += 1
            return 8

        if num == SYS_LSEEK:
            sfd = self.spec_fds.get(regs[A0])
            if sfd is None:
                raise SpeculationFault(f"speculative lseek on fd {regs[A0]}")
            offset = to_signed(regs[A1])
            whence = regs[A2]
            if whence == SEEK_SET:
                new = offset
            elif whence == SEEK_CUR:
                new = sfd.offset + offset
            elif whence == SEEK_END:
                new = (sfd.inode.size if sfd.inode else 0) + offset
            else:
                raise SpeculationFault(f"speculative lseek whence {whence}")
            sfd.offset = max(0, new)
            regs[V0] = sfd.offset
            thread.pc += 1
            return 8

        if num == SYS_FSTAT:
            # Allowed real system call.
            sfd = self.spec_fds.get(regs[A0])
            if sfd is None or sfd.inode is None:
                raise SpeculationFault(f"speculative fstat on fd {regs[A0]}")
            regs[V0] = sfd.inode.size
            thread.pc += 1
            return cpu.syscall_cycles

        if num == SYS_SBRK:
            # Allowed, but served by the SpecHint allocator (private heap,
            # so speculation cannot leak process memory).
            try:
                regs[V0] = self.process.mem.spec_sbrk(regs[A0])
            except Exception as exc:
                raise SpeculationFault(f"speculative sbrk failed: {exc}") from exc
            thread.pc += 1
            return cpu.syscall_cycles

        if num == SYS_WRITE:
            # Suppressed: pretend success, produce no side effect.  The
            # suppression itself is a recorded, auditable event.
            regs[V0] = regs[A2]
            thread.pc += 1
            self.kernel.stats.counter(metrics.SPEC_WRITES_SUPPRESSED).add()
            if self.auditor is not None:
                self.auditor.table.record(
                    "write_suppressed", f"fd={regs[A0]} len={regs[A2]}"
                )
            return 4

        if num in (SYS_HINT_SEG, SYS_HINT_FD_SEG, SYS_CANCEL_ALL):
            # Hint ioctls are always allowed; route through the kernel.
            return self.kernel.syscall(thread, num)

        if num == SYS_EXIT:
            return self.park(thread, "spec_exit")

        # Any other system call would be an externally visible side effect.
        self.kernel.stats.counter(metrics.SPEC_SYSCALLS_BLOCKED).add()
        if self.auditor is not None:
            self.auditor.table.record("syscall_blocked", f"num={num}")
        return self.park(thread, "forbidden_syscall")

    # -------------------------------------------------------- control transfers

    def resolve_control_target(self, target: int) -> Optional[int]:
        """The handling routine for dynamically computed control transfers.

        Shadow addresses pass through; original-text *function entries* map
        to their shadow twins; anything else is unmappable (unless the
        ``map_all_addresses`` extension is enabled) and the speculating
        thread must be prevented from leaving the shadow code.
        """
        meta = self.meta
        shadow_lo = meta.shadow_base
        shadow_hi = meta.shadow_base + meta.original_text_len
        if shadow_lo <= target < shadow_hi:
            return target
        mapped = meta.function_map.get(target)
        if mapped is not None:
            return mapped
        if meta.map_all_addresses and 0 <= target < meta.original_text_len:
            return meta.to_shadow(target)
        return None

    # ------------------------------------------------------- isolation response

    def quarantine(self, thread: "Thread", violation: IsolationViolation) -> int:
        """Graded response to an isolation violation.

        Speculation is benched for an exponentially growing window of
        original-thread reads (permanent after repeat offences), its
        outstanding hints are cancelled, and the speculating thread parks.
        The original thread and its memory are never touched — the run
        continues with baseline correctness, minus hinting.
        """
        self.isolation_violations += 1
        self.kernel.stats.counter(metrics.SPEC_ISOLATION_VIOLATIONS).add()
        self.restart_flag = False
        self.quarantine_state.impose(str(violation))
        self.kernel.stats.counter(metrics.SPEC_QUARANTINES).add()
        if self.quarantine_state.permanent:
            self.kernel.stats.counter(metrics.SPEC_QUARANTINE_PERMANENT).add()
        if self.auditor is not None:
            self.auditor.table.record("quarantine", str(violation))
        if self.kernel.tracer.enabled:
            self.kernel.tracer.instant(
                CAT_SPEC, "quarantine", tid=TID_SPECULATING,
                permanent=self.quarantine_state.permanent,
            )
        cancelled = self.kernel.manager.cancel_all(self.process.pid)
        if cancelled:
            self.kernel.stats.counter(metrics.SPEC_QUARANTINE_HINTS_CANCELLED).add(
                cancelled
            )
        return self.park(thread, "isolation_quarantine")

    # ------------------------------------------------------------ park / signals

    def park(self, thread: "Thread", reason: str) -> int:
        """Halt speculation until the next restart."""
        from repro.kernel.thread import ThreadState

        thread.state = ThreadState.SPEC_IDLE
        thread.stop_reason = "spec_idle"
        self.parks[reason] = self.parks.get(reason, 0) + 1
        self.kernel.stats.counter(metrics.SPEC_PARK_PREFIX + reason).add()
        if self.kernel.tracer.enabled:
            self.kernel.tracer.instant(
                CAT_SPEC, "park", tid=TID_SPECULATING, reason=reason,
            )
        return _STOPPED

    def note_signal(self, thread: "Thread") -> None:
        """A speculative fault became a signal (Section 3.2.1's handlers)."""
        from repro.kernel.thread import ThreadState

        self.signals += 1
        self.kernel.stats.counter(metrics.SPEC_SIGNALS).add()
        if self.kernel.tracer.enabled:
            self.kernel.tracer.instant(CAT_SPEC, "signal", tid=TID_SPECULATING)
        thread.state = ThreadState.SPEC_IDLE
        thread.stop_reason = "spec_idle"
        if self.watchdog.note_fault():
            self._disable_speculation()

    def _disable_speculation(self) -> None:
        """Watchdog trip: fall back to vanilla execution for good.

        The speculating thread is parked permanently, the restart handshake
        is torn down, and outstanding hints are cancelled so TIP stops
        prefetching down a path nobody will follow.  The original thread is
        untouched — this is the paper's safety guarantee made operational:
        losing speculation costs performance, never correctness.
        """
        from repro.kernel.thread import ThreadState

        reason = self.watchdog.trip_reason or "unknown"
        self.restart_flag = False
        if self.thread.state in (ThreadState.RUNNABLE, ThreadState.SPEC_IDLE):
            self.thread.state = ThreadState.SPEC_IDLE
            self.thread.stop_reason = "spec_idle"
        cancelled = self.kernel.manager.cancel_all(self.process.pid)
        self.kernel.stats.counter(metrics.SPEC_WATCHDOG_DISABLED).add()
        self.kernel.stats.counter(metrics.SPEC_WATCHDOG_TRIP_PREFIX + reason).add()
        if cancelled:
            self.kernel.stats.counter(metrics.SPEC_WATCHDOG_HINTS_CANCELLED).add(cancelled)
        if self.kernel.tracer.enabled:
            self.kernel.tracer.instant(
                CAT_SPEC, "watchdog_disabled", tid=TID_SPECULATING, reason=reason,
            )
