"""The hint log (Section 3.2.2).

The speculating thread records every read it predicts (whether or not a TIP
hint was issued for it — zero-byte EOF reads are predicted but not hinted).
The original thread keeps an index into the log and checks the next entry
before each of its own reads:

* no next entry  -> speculation is *behind* normal execution -> off track;
* entry mismatch -> speculation *strayed* from the real path  -> off track;
* entry matches  -> speculation may still be on track; consume the entry.

On an off-track detection the original thread saves its registers and sets
the restart flag (see :mod:`repro.spechint.runtime`).
"""

from __future__ import annotations

from typing import List, Optional


class HintLogEntry:
    """One predicted read."""

    __slots__ = ("ino", "offset", "length", "hinted")

    def __init__(self, ino: int, offset: int, length: int, hinted: bool) -> None:
        self.ino = ino
        #: File offset the read will start at.
        self.offset = offset
        #: *Requested* length (the original thread requests the same).
        self.length = length
        #: Whether a TIP hint call was issued for this prediction.
        self.hinted = hinted

    def matches(self, ino: int, offset: int, length: int) -> bool:
        return self.ino == ino and self.offset == offset and self.length == length

    def __repr__(self) -> str:
        tag = "hinted" if self.hinted else "predicted"
        return f"HintLogEntry(ino={self.ino}, off={self.offset}, len={self.length}, {tag})"


class HintLog:
    """Shared between the original and speculating threads."""

    def __init__(self) -> None:
        self._entries: List[HintLogEntry] = []
        self._index = 0
        #: Lifetime statistics.
        self.appended_total = 0
        self.matched_total = 0
        self.mismatched_total = 0
        self.empty_total = 0

    def append(self, ino: int, offset: int, length: int, hinted: bool) -> HintLogEntry:
        """Speculating thread: record a predicted read."""
        entry = HintLogEntry(ino, offset, length, hinted)
        self._entries.append(entry)
        self.appended_total += 1
        return entry

    def next_entry(self) -> Optional[HintLogEntry]:
        """Original thread: peek the next unconsumed entry."""
        if self._index < len(self._entries):
            return self._entries[self._index]
        return None

    def check_and_consume(self, ino: int, offset: int, length: int) -> bool:
        """Original thread's pre-read check.  True = still on track."""
        entry = self.next_entry()
        if entry is None:
            self.empty_total += 1
            return False
        if entry.matches(ino, offset, length):
            self._index += 1
            self.matched_total += 1
            return True
        self.mismatched_total += 1
        return False

    def reset(self) -> None:
        """Restart protocol: discard the log and the consume index."""
        self._entries.clear()
        self._index = 0

    @property
    def unconsumed(self) -> int:
        """Entries the original thread has not yet reached."""
        return len(self._entries) - self._index

    def __len__(self) -> int:
        return len(self._entries)
