"""Typed metric-name constants.

Every counter and distribution name used by more than one module (or read
back by the harness) lives here.  ``StatRegistry.counter`` creates counters
on first use, which means a typo'd name silently creates a *new* counter
and the intended one stays at zero — centralizing the names turns that
class of bug into an ``AttributeError`` / linter finding at the call site.

Naming convention: ``<subsystem>.<event>`` with subsystem prefixes matching
the trace categories (see :mod:`repro.trace.tracer`).  Per-instance metrics
(e.g. one counter per disk) keep a ``*_PREFIX`` constant here and append
the instance discriminator at the call site.
"""

from __future__ import annotations

# -- application-visible syscall layer (kernel) -----------------------------

APP_OPEN_CALLS = "app.open_calls"
APP_READ_CALLS = "app.read_calls"
APP_READ_BLOCKS = "app.read_blocks"
APP_READ_BYTES = "app.read_bytes"
APP_READ_STALLS = "app.read_stalls"
APP_READ_CALL_CPU = "app.read_call_cpu"          # distribution
APP_WRITE_CALLS = "app.write_calls"
APP_WRITE_BLOCKS = "app.write_blocks"
APP_WRITE_BYTES = "app.write_bytes"
APP_HINT_CALLS = "app.hint_calls"
APP_HINT_CALLS_UNRESOLVABLE = "app.hint_calls_unresolvable"
APP_HINT_CALL_CPU = "app.hint_call_cpu"          # distribution

KERNEL_RUNS = "kernel.runs"
#: Wall cycles the original thread spent blocked on demand reads (the
#: "demand stall" phase of the stall breakdown).
KERNEL_DEMAND_STALL_CYCLES = "kernel.demand_stall_cycles"
#: Per-stall distribution of the same (for percentiles in summaries).
KERNEL_STALL_CYCLES = "kernel.stall_cycles"      # distribution
KERNEL_CONTEXT_SWITCHES = "kernel.context_switches"

# -- block cache (mechanism) ------------------------------------------------

CACHE_OVERCOMMITTED_INSERTS = "cache.overcommitted_inserts"
CACHE_PREFETCHED_BLOCKS = "cache.prefetched_blocks"
CACHE_PREFETCHED_FULLY = "cache.prefetched_fully"
CACHE_PREFETCHED_PARTIAL = "cache.prefetched_partial"
CACHE_PREFETCHED_UNUSED = "cache.prefetched_unused"
CACHE_BLOCK_READS = "cache.block_reads"
CACHE_BLOCK_REUSES = "cache.block_reuses"
CACHE_EVICTIONS = "cache.evictions"
CACHE_FETCH_FAILURES = "cache.fetch_failures"
CACHE_DEMAND_MISSES = "cache.demand_misses"
CACHE_DEMAND_JOINS_INFLIGHT = "cache.demand_joins_inflight"
CACHE_PREFETCH_DENIED_NO_ROOM = "cache.prefetch_denied_no_room"
CACHE_PREFETCHES_DROPPED = "cache.prefetches_dropped"

# -- TIP informed prefetching ----------------------------------------------

TIP_HINT_CALLS = "tip.hint_calls"
TIP_HINTS_IGNORED = "tip.hints_ignored"
TIP_HINTED_BLOCKS = "tip.hinted_blocks"
TIP_HINTED_READ_CALLS = "tip.hinted_read_calls"
TIP_HINTED_READ_BYTES = "tip.hinted_read_bytes"
TIP_HINTS_CONSUMED = "tip.hints_consumed"
TIP_HINTS_CANCELLED = "tip.hints_cancelled"
TIP_HINTS_STALE_DROPPED = "tip.hints_stale_dropped"
TIP_HINTS_UNCONSUMED_AT_END = "tip.hints_unconsumed_at_end"
TIP_CANCEL_CALLS = "tip.cancel_calls"
TIP_CANCEL_DRAINED = "tip.cancel_drained"
TIP_PREFETCHES_ISSUED = "tip.prefetches_issued"
TIP_PREFETCHES_DROPPED = "tip.prefetches_dropped"
TIP_HINTED_EVICTIONS = "tip.hinted_evictions"
#: Distribution of disclosed->consumed lead time per hinted block, in
#: cycles (the hint-lifecycle layer's headline number).
TIP_HINT_LEAD_CYCLES = "tip.hint_lead_cycles"    # distribution
#: Consumed hints whose prefetch had fully arrived before the demand read.
TIP_HINTS_READY_BEFORE_DEMAND = "tip.hints_ready_before_demand"

# -- SpecHint runtime -------------------------------------------------------

SPEC_RESTARTS = "spec.restarts"
SPEC_RESTART_REQUESTS = "spec.restart_requests"
SPEC_CANCEL_CALLS = "spec.cancel_calls"
SPEC_CANCEL_DRAIN_VERIFIED = "spec.cancel_drain_verified"
SPEC_HINTS_ISSUED = "spec.hints_issued"
SPEC_SIGNALS = "spec.signals"
SPEC_WRITES_SUPPRESSED = "spec.writes_suppressed"
SPEC_SYSCALLS_BLOCKED = "spec.syscalls_blocked"
SPEC_THROTTLE_SUPPRESSED = "spec.throttle_suppressed"
SPEC_ISOLATION_VIOLATIONS = "spec.isolation_violations"
SPEC_QUARANTINES = "spec.quarantines"
SPEC_QUARANTINE_PERMANENT = "spec.quarantine_permanent"
SPEC_QUARANTINE_RELEASED = "spec.quarantine_released"
SPEC_QUARANTINE_HINTS_CANCELLED = "spec.quarantine_hints_cancelled"
SPEC_WATCHDOG_DISABLED = "spec.watchdog_disabled"
SPEC_WATCHDOG_HINTS_CANCELLED = "spec.watchdog_hints_cancelled"
#: Observable cycles the original thread spent in hint-log checks and
#: restart requests (the "checks" phase of the stall breakdown).
SPEC_CHECK_CYCLES = "spec.check_cycles"
#: Per-reason park / watchdog-trip counters append the reason here.
SPEC_PARK_PREFIX = "spec.park."
SPEC_WATCHDOG_TRIP_PREFIX = "spec.watchdog_trip."

SPECHINT_ANALYSIS_STORES_ELIDED = "spechint.analysis.stores_elided"
SPECHINT_ANALYSIS_LOADS_UNCHECKED = "spechint.analysis.loads_unchecked"
SPECHINT_ANALYSIS_TRANSFERS_RESOLVED = "spechint.analysis.transfers_resolved"
SPECHINT_ANALYSIS_CHECK_CYCLES_SAVED = "spechint.analysis.check_cycles_saved"
#: Total COW regions first-copied by speculation (across clears).
SPEC_COW_REGIONS_COPIED = "spec.cow_regions_copied"

# -- storage ----------------------------------------------------------------

ARRAY_RETRIES = "array.retries"
ARRAY_TIMEOUTS = "array.timeouts"
ARRAY_COMPLETED = "array.completed"
ARRAY_FAULTED_ATTEMPTS = "array.faulted_attempts"
ARRAY_DEMAND_FAILURES = "array.demand_failures"
ARRAY_PREFETCHES_DROPPED = "array.prefetches_dropped"
ARRAY_PREFETCHES_HELD = "array.prefetches_held"
ARRAY_DEMAND_COALESCED = "array.demand_coalesced"

# -- degraded mode / redundancy ---------------------------------------------

#: Permanent disk deaths the array observed (first faulted access).
ARRAY_DISK_DEATHS = "array.disk_deaths"
#: Reads served by parity reconstruction because the home disk is dead.
ARRAY_DEGRADED_READS = "array.degraded_reads"
#: Blocks XOR-ed back together from surviving disks (degraded reads,
#: hedges that won, and rebuild rows all count).
ARRAY_RECONSTRUCTED_BLOCKS = "array.reconstructed_blocks"
#: Hedged (duplicate reconstruction-path) reads: armed/won/cancelled/lost.
ARRAY_HEDGES_ISSUED = "array.hedges_issued"
ARRAY_HEDGES_WON = "array.hedges_won"
ARRAY_HEDGES_CANCELLED = "array.hedges_cancelled"
ARRAY_HEDGES_LOST = "array.hedges_lost"
#: Blocks a run could not recover (double fault / no redundancy).
FAULTS_DATA_LOSS = "faults.data_loss"

REBUILD_STARTED = "rebuild.started"
REBUILD_BLOCKS = "rebuild.blocks_resilvered"
REBUILD_COMPLETED = "rebuild.completed"
#: Sim-clock cycle at which the (last) rebuild finished; the counter is
#: bumped by the cycle value once, so its value *is* the completion time.
REBUILD_COMPLETED_CYCLE = "rebuild.completed_cycle"
#: Sim-clock cycle at which the *workload* finished, recorded only when a
#: rebuild outlives it and keeps the clock running — lets consumers
#: separate demand-path slowdown from the rebuild drain tail.
WORKLOAD_COMPLETED_CYCLE = "app.workload_completed_cycle"

#: Hinted prefetches TIP declined to issue while the array was degraded.
TIP_PREFETCHES_SHED_DEGRADED = "tip.prefetches_shed_degraded"
#: Sequential readahead the cache manager shed while degraded; the
#: fetch origin is appended (e.g. "cache.shed_degraded.readahead").
CACHE_SHED_DEGRADED_PREFIX = "cache.shed_degraded."
#: Resumable degraded-mode speculation suspensions (not watchdog trips).
SPEC_DEGRADED_SUSPENSIONS = "spec.degraded_suspensions"
SPEC_DEGRADED_RESUMES = "spec.degraded_resumes"

#: Per-disk counters: prefix + "<metric>" with the disk id baked into the
#: instance prefix, e.g. "disk0.accesses".
DISK_PREFIX = "disk"
#: Per-disk I/O health suffixes surfaced in RunResult and trace summaries
#: (full name: f"{DISK_PREFIX}{disk_id}.{suffix}").
DISK_RETRIES_SUFFIX = "retries"
DISK_TIMEOUTS_SUFFIX = "timeouts"
DISK_HEDGES_SUFFIX = "hedges"
DISK_HEDGES_WON_SUFFIX = "hedges_won"
