"""The simulation clock.

Time is an integer number of processor cycles.  Using integer cycles (rather
than float seconds) keeps event ordering exact and the simulation perfectly
deterministic; seconds are derived on demand for reporting.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonically advancing cycle counter.

    The clock may only move forward.  Components read :attr:`now` freely and
    advance it via :meth:`advance` (relative) or :meth:`advance_to`
    (absolute).
    """

    __slots__ = ("now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        #: Current simulation time in cycles.
        self.now: int = start

    def advance(self, cycles: int) -> int:
        """Move time forward by ``cycles`` and return the new time."""
        if cycles < 0:
            raise SimulationError(f"cannot advance clock by negative {cycles} cycles")
        self.now += cycles
        return self.now

    def advance_to(self, when: int) -> int:
        """Move time forward to the absolute time ``when``.

        Advancing to the present is a no-op; advancing to the past is an
        error because it would break event ordering.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot move clock backwards from {self.now} to {when}"
            )
        self.now = when
        return self.now

    def seconds(self, hz: int) -> float:
        """Current time in seconds on a processor running at ``hz``."""
        return self.now / hz

    def __repr__(self) -> str:
        return f"SimClock(now={self.now})"
