"""Deterministic random number generation.

Every stochastic decision in the reproduction — disk layout jitter, synthetic
dataset contents, workload shapes — flows through :class:`DeterministicRng`
instances seeded from a configuration seed, so identical configurations give
bit-identical simulations.  Wall-clock time never enters the simulation.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream with a few convenience helpers.

    Thin wrapper around :class:`random.Random` so that (a) the seed
    derivation scheme is centralized and (b) call sites cannot accidentally
    reach the global ``random`` module.
    """

    def __init__(self, seed: int, stream: str = "") -> None:
        #: The (seed, stream) pair fully identifies this stream.
        self.seed = seed
        self.stream = stream
        self._rng = random.Random(f"{seed}/{stream}")

    def fork(self, stream: str) -> "DeterministicRng":
        """Derive an independent, reproducible sub-stream."""
        return DeterministicRng(self.seed, f"{self.stream}/{stream}")

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return self._rng.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._rng.uniform(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element."""
        return self._rng.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """k distinct elements, order randomized."""
        return self._rng.sample(seq, k)

    def bytes(self, n: int) -> bytes:
        """n pseudo-random bytes."""
        return self._rng.randbytes(n)

    def pareto_int(self, alpha: float, lo: int, hi: int) -> int:
        """Bounded integer draw from a Pareto-ish heavy tail.

        Used for file-size distributions: most files small, a few large,
        matching the file-size skew observed in file system traces.
        """
        value = int(lo * self._rng.paretovariate(alpha))
        return max(lo, min(hi, value))
