"""Event queue for the discrete-event simulation.

Events are callbacks scheduled at absolute cycle times.  The engine does not
own a run loop of its own: the SpecVM machine drives time forward while
executing instructions and asks the engine to dispatch any events whose time
has arrived (:meth:`EventEngine.dispatch_due`).  When every thread is blocked,
the kernel fast-forwards the clock to the next event (:meth:`EventEngine.advance_to_next`).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import SimClock

EventCallback = Callable[[], None]


class Event:
    """A scheduled callback.  Cancellation is supported via :meth:`cancel`."""

    __slots__ = ("when", "seq", "callback", "cancelled", "label")

    def __init__(self, when: int, seq: int, callback: EventCallback, label: str) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the callback from running when the event comes due."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.label!r} @ {self.when}, {state})"


class EventEngine:
    """Priority queue of :class:`Event` objects sharing a :class:`SimClock`.

    Ties in time are broken by scheduling order (FIFO), which keeps the
    simulation deterministic.
    """

    #: Horizon value meaning "no pending events".
    NO_EVENTS = 1 << 62

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0
        #: Total events dispatched (for tests and reporting).
        self.dispatched = 0
        #: Time of the earliest pending event (fast path for the machine's
        #: per-instruction preemption check).  May be conservatively early
        #: when the earliest event was cancelled; dispatch_due refreshes it.
        self.horizon: int = self.NO_EVENTS

    def schedule_at(self, when: int, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute cycle time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {when} before now={self.clock.now}"
            )
        self._seq += 1
        event = Event(when, self._seq, callback, label)
        heapq.heappush(self._heap, (when, self._seq, event))
        if when < self.horizon:
            self.horizon = when
        return event

    def schedule_after(self, delay: int, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative event delay {delay} for {label!r}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest pending event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            self.horizon = self.NO_EVENTS
            return None
        self.horizon = self._heap[0][0]
        return self._heap[0][0]

    def dispatch_due(self) -> int:
        """Run every pending event with ``when <= now``; return count run."""
        ran = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0][0] > self.clock.now:
                self.horizon = self._heap[0][0] if self._heap else self.NO_EVENTS
                return ran
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.dispatched += 1
            ran += 1
            event.callback()

    def advance_to_next(self) -> bool:
        """Jump the clock to the next event and dispatch everything due then.

        Returns False (without moving time) when no events are pending —
        i.e. the simulation would deadlock, which callers treat as an error
        or as natural termination depending on context.
        """
        when = self.next_event_time()
        if when is None:
            return False
        self.clock.advance_to(when)
        self.dispatch_due()
        return True

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
