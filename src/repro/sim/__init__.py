"""Discrete-event simulation core.

The whole reproduction runs on a single simulated clock measured in
*processor cycles* (integers).  The SpecVM interpreter advances the clock as
it executes instructions; the storage substrate schedules I/O completion
events at absolute cycle times on the shared :class:`~repro.sim.engine.EventEngine`.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Event, EventEngine
from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, Distribution, StatRegistry

__all__ = [
    "SimClock",
    "Event",
    "EventEngine",
    "DeterministicRng",
    "Counter",
    "Distribution",
    "StatRegistry",
]
