"""Statistics collection.

Each simulated subsystem owns named counters and distributions registered in
one :class:`StatRegistry` per simulation, which the harness snapshots at the
end of a run to build the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically increasing (or explicitly adjustable) named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def add(self, amount: int = 1) -> None:
        """Increase the count by ``amount``."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Distribution:
    """Streaming distribution of integer observations.

    Keeps every observation (runs are small enough) so exact medians and
    percentiles — which the paper reports, e.g. median cycles between read
    calls — are available.  Aggregates are maintained incrementally and the
    sorted order is cached between observations, so summaries that read
    ``mean``/``percentile`` repeatedly (mid-run trace queries, the tables
    code) do not re-sum or re-sort the whole sample every access.
    """

    __slots__ = ("name", "values", "_total", "_min", "_max", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []
        self._total: float = 0.0
        self._min: float = 0.0
        self._max: float = 0.0
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self.values:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self.values.append(value)
        self._total += value
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / len(self.values) if self.values else 0.0

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def maximum(self) -> float:
        return self._max if self.values else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.values else 0.0

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self.values)
        return self._sorted

    def percentile(self, pct: float) -> float:
        """Exact percentile by nearest-rank on the sorted observations.

        Empty distributions report 0.0 for any percentile; a single
        observation is every percentile of itself; out-of-range ``pct``
        clamps to the extremes instead of indexing out of bounds.
        """
        if not self.values:
            return 0.0
        ordered = self._ordered()
        if len(ordered) == 1 or pct <= 0:
            return ordered[0]
        if pct >= 100:
            return ordered[-1]
        rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def __repr__(self) -> str:
        return f"Distribution({self.name}, n={self.count}, median={self.median})"


class StatRegistry:
    """Namespace of counters and distributions for one simulation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._distributions: Dict[str, Distribution] = {}

    def counter(self, name: str) -> Counter:
        """Get (creating on first use) the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = Counter(name)
            self._counters[name] = found
        return found

    def distribution(self, name: str) -> Distribution:
        """Get (creating on first use) the distribution called ``name``."""
        found = self._distributions.get(name)
        if found is None:
            found = Distribution(name)
            self._distributions[name] = found
        return found

    def get(self, name: str, default: int = 0) -> int:
        """Current value of a counter, without creating it."""
        found = self._counters.get(name)
        return found.value if found is not None else default

    def counters(self) -> Iterator[Tuple[str, int]]:
        """Iterate (name, value) over all counters, sorted by name."""
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def distribution_or_none(self, name: str) -> Optional[Distribution]:
        """The named distribution if any observations were made."""
        return self._distributions.get(name)

    def distributions(self) -> Iterator[Tuple[str, Distribution]]:
        """Iterate (name, distribution) sorted by name — counters and
        distributions are queryable mid-run, not just at snapshot time."""
        for name in sorted(self._distributions):
            yield name, self._distributions[name]

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of all counter values."""
        return {name: counter.value for name, counter in self._counters.items()}
