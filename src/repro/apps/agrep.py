"""Agrep (v2.04 in the paper): full-text search over many files.

"The application loops through the files specified on its command line,
opening and reading each file sequentially.  Therefore, the arguments to
Agrep completely specify the stream of read accesses it will perform."

The search loop is byte-granular and load-dense, which is why Agrep has the
paper's largest dilation factor (~7.5): every load in the shadow code pays
a COW check.  We model the search inner loop with chunked ``CWORK``
declaring that load density.

The *manual* variant mirrors Patterson's hand-hinted Agrep: since argv
fully determines the accesses, it discloses every file up front with
``TIPIO_SEG`` hints before starting to search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import generate_agrep_corpus
from repro.fs.filesystem import FileSystem
from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import (
    SYS_CLOSE,
    SYS_EXIT,
    SYS_HINT_SEG,
    SYS_OPEN,
    SYS_READ,
    Reg,
)
from repro.vm.stdlib import emit_stdlib

#: Paper Agrep binary size (derived from Table 3: 1648 KB at +610%).
PAPER_ORIGINAL_SIZE = 232 * 1024

#: What the static-analysis pass (``repro analyze``) is expected to prove
#: about this binary.  The counts are structural (workload-scale
#: independent); tests and ``benchmarks/bench_analysis.py`` assert them.
ANALYSIS_EXPECTATIONS = {
    "wrapped_stores": 6,      # all in spec-unreachable stdlib routines
    "elidable_stores": 6,     # ...so every COW store wrapper is elidable
    "resolved_transfers": 0,
    "lint_errors": 0,
    "lint_warnings": 0,
}


@dataclass(frozen=True)
class AgrepWorkload:
    """Scaled-down version of the paper's 1349-file kernel-source grep."""

    nfiles: int = 160
    seed: int = 42
    #: Search cost per KB of scanned text (cycles of pure computation).
    search_cycles_per_kb: int = 1500
    #: Loads the search loop performs per KB (drives the dilation factor).
    search_loads_per_kb: int = 1950
    #: Stores per KB (match bookkeeping).
    search_stores_per_kb: int = 30

    def scaled(self, factor: float) -> "AgrepWorkload":
        """A workload with the file count scaled by ``factor``."""
        return AgrepWorkload(
            nfiles=max(4, int(self.nfiles * factor)),
            seed=self.seed,
            search_cycles_per_kb=self.search_cycles_per_kb,
            search_loads_per_kb=self.search_loads_per_kb,
            search_stores_per_kb=self.search_stores_per_kb,
        )


def build_agrep(
    fs: FileSystem,
    workload: AgrepWorkload,
    manual_hints: bool = False,
) -> Binary:
    """Create the corpus in ``fs`` and assemble the Agrep binary."""
    inodes = generate_agrep_corpus(fs, workload.nfiles, workload.seed, min_kb=4)

    asm = Assembler("agrep-manual" if manual_hints else "agrep")
    emit_stdlib(asm)

    path_addrs = []
    for i, inode in enumerate(inodes):
        path_addrs.append(asm.data_asciiz(f"path{i}", inode.path))
    asm.data_words("paths", path_addrs)
    asm.data_space("buf", 8192)

    asm.entry("main")
    with asm.function("main"):
        if manual_hints:
            # Disclose the entire access stream up front: one TIPIO_SEG
            # hint per file (argv fully determines the reads).
            asm.li(Reg.s0, 0)
            asm.label("hint_loop")
            asm.li(Reg.at, workload.nfiles)
            asm.bge(Reg.s0, Reg.at, "hint_done")
            asm.la(Reg.t0, "paths")
            asm.shli(Reg.t1, Reg.s0, 3)
            asm.add(Reg.t0, Reg.t0, Reg.t1)
            asm.load(Reg.a0, Reg.t0, 0)
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, 1 << 30)  # whole file (TIP clamps to size)
            asm.syscall(SYS_HINT_SEG)
            asm.addi(Reg.s0, Reg.s0, 1)
            asm.jmp("hint_loop")
            asm.label("hint_done")

        asm.li(Reg.s0, 0)  # file index
        asm.li(Reg.s5, 0)  # total bytes scanned

        asm.label("files_loop")
        asm.li(Reg.at, workload.nfiles)
        asm.bge(Reg.s0, Reg.at, "done")
        asm.la(Reg.t0, "paths")
        asm.shli(Reg.t1, Reg.s0, 3)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.a0, Reg.t0, 0)
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)

        asm.label("read_loop")
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 8192)
        asm.syscall(SYS_READ)
        asm.beq(Reg.v0, Reg.zero, "file_done")
        asm.add(Reg.s5, Reg.s5, Reg.v0)

        # Pattern search over the buffer, one CWORK per KB chunk.  The
        # occasional real loads keep the buffer pages demonstrably touched.
        asm.mov(Reg.t3, Reg.v0)
        asm.la(Reg.t4, "buf")
        asm.label("search_loop")
        asm.slti(Reg.at, Reg.t3, 1)
        asm.bne(Reg.at, Reg.zero, "read_loop")
        asm.cwork(
            workload.search_cycles_per_kb,
            workload.search_loads_per_kb,
            workload.search_stores_per_kb,
        )
        asm.loadb(Reg.t5, Reg.t4, 0)
        asm.addi(Reg.t4, Reg.t4, 1024)
        asm.addi(Reg.t3, Reg.t3, -1024)
        asm.jmp("search_loop")

        asm.label("file_done")
        asm.mov(Reg.a0, Reg.s1)
        asm.syscall(SYS_CLOSE)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("files_loop")

        asm.label("done")
        asm.mov(Reg.a0, Reg.s5)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)

    binary = asm.finish()
    binary.declared_size_bytes = PAPER_ORIGINAL_SIZE
    binary.declared_text_fraction = 0.75
    return binary
