"""XDataSlice (v2.2 in the paper): out-of-core 3-D slice visualization.

"XDataSlice ... allows users to view a false-color representation of
arbitrary slices through a three-dimensional data set ... the benchmark
retrieves 25 random slices through a data set ... that resides in
[disk]."  The dataset vastly exceeds the file cache, reads are short
strided scanlines with almost no reuse, and the slice coordinates fully
determine the read stream (no data dependence) — which is why the
speculating XDataSlice hints 97.5 % of its reads and the stock sequential
read-ahead wastes 58 % of everything it prefetches.

Slice axes are dispatched through a **jump table** (a switch statement in a
format the SpecHint tool recognizes and remaps into the shadow code).

The *manual* variant mirrors Patterson's modified XDataSlice: each slice's
scanline reads are disclosed as a batch of hints when the slice is
requested, just before reading it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import generate_xds_dataset, xds_slice_plan
from repro.fs.filesystem import FileSystem
from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import (
    SEEK_SET,
    SYS_EXIT,
    SYS_HINT_FD_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    Reg,
)
from repro.vm.stdlib import emit_stdlib

#: Paper XDataSlice binary size (derived from Table 3: 10792 KB at +138%).
PAPER_ORIGINAL_SIZE = 4534 * 1024

#: What the static-analysis pass (``repro analyze``) is expected to prove
#: about this binary.  Tests and ``benchmarks/bench_analysis.py`` assert
#: these structural (scale-independent) counts.
ANALYSIS_EXPECTATIONS = {
    "wrapped_stores": 6,      # all in spec-unreachable stdlib routines
    "elidable_stores": 6,
    "resolved_transfers": 0,
    "lint_errors": 0,
    "lint_warnings": 0,
}

VOXEL_BYTES = 4


@dataclass(frozen=True)
class XdsWorkload:
    """Scaled-down version of the paper's 25 slices of a 512^3 volume."""

    dim: int = 128
    nslices: int = 25
    seed: int = 11
    #: Rendering cost per scanline (false-coloring the voxels).
    render_cycles: int = 24_000
    render_loads: int = 1_600
    render_stores: int = 160

    def scaled(self, factor: float) -> "XdsWorkload":
        return XdsWorkload(
            dim=self.dim,
            nslices=max(2, int(self.nslices * factor)),
            seed=self.seed,
            render_cycles=self.render_cycles,
            render_loads=self.render_loads,
            render_stores=self.render_stores,
        )

    @property
    def scanline_bytes(self) -> int:
        return self.dim * VOXEL_BYTES


def build_xdataslice(
    fs: FileSystem,
    workload: XdsWorkload,
    manual_hints: bool = False,
) -> Binary:
    """Create the dataset in ``fs`` and assemble the XDataSlice binary."""
    inode = generate_xds_dataset(fs, workload.dim, workload.seed)
    plan = xds_slice_plan(workload.dim, workload.nslices, workload.seed)

    dim = workload.dim
    line = workload.scanline_bytes
    plane = dim * dim * VOXEL_BYTES

    asm = Assembler("xds-manual" if manual_hints else "xds")
    emit_stdlib(asm)

    asm.data_asciiz("volpath", inode.path)
    asm.data_words("plan", plan)
    asm.data_space("linebuf", max(line, 64))

    # Axis dispatch jump table (a recognized-format switch).
    axis_table = asm.jump_table(["slice_x", "slice_y", "slice_z"])

    asm.entry("main")
    with asm.function("render_line"):
        asm.cwork(workload.render_cycles, workload.render_loads,
                  workload.render_stores)
        asm.load(Reg.t0, Reg.a0, 0)  # sample the scanline
        asm.ret()

    def emit_scanline(offset_reg: Reg) -> None:
        """lseek + read + render one scanline at ``offset_reg``."""
        asm.mov(Reg.a0, Reg.s1)
        asm.mov(Reg.a1, offset_reg)
        asm.li(Reg.a2, SEEK_SET)
        asm.syscall(SYS_LSEEK)
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "linebuf")
        asm.li(Reg.a2, line)
        asm.syscall(SYS_READ)
        asm.push(Reg.ra)
        asm.la(Reg.a0, "linebuf")
        asm.call("render_line")
        asm.pop(Reg.ra)

    def emit_hint(offset_reg: Reg) -> None:
        """One TIPIO_FD_SEG hint for the scanline at ``offset_reg``."""
        asm.mov(Reg.a0, Reg.s1)
        asm.mov(Reg.a1, offset_reg)
        asm.li(Reg.a2, line)
        asm.syscall(SYS_HINT_FD_SEG)

    with asm.function("main"):
        asm.la(Reg.a0, "volpath")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)

        asm.li(Reg.s0, 0)  # slice index
        asm.label("slices_loop")
        asm.li(Reg.at, workload.nslices)
        asm.bge(Reg.s0, Reg.at, "done")

        # axis = plan[2*i]; pos = plan[2*i+1]
        asm.la(Reg.t0, "plan")
        asm.shli(Reg.t1, Reg.s0, 4)  # 2 words per slice
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.s2, Reg.t0, 0)  # axis
        asm.load(Reg.s3, Reg.t0, 8)  # position
        asm.switch(Reg.s2, axis_table)

        # x slice: one scanline-sized run per z plane (the blocks holding
        # the needed x column); same I/O shape as a y slice here.
        asm.label("slice_x")
        if manual_hints:
            asm.li(Reg.s4, 0)
            asm.label("hx_loop")
            asm.li(Reg.at, dim)
            asm.bge(Reg.s4, Reg.at, "hx_done")
            asm.muli(Reg.s5, Reg.s4, plane)
            asm.muli(Reg.t2, Reg.s3, VOXEL_BYTES)
            asm.add(Reg.s5, Reg.s5, Reg.t2)
            emit_hint(Reg.s5)
            asm.addi(Reg.s4, Reg.s4, 1)
            asm.jmp("hx_loop")
            asm.label("hx_done")
        asm.li(Reg.s4, 0)  # z
        asm.label("x_loop")
        asm.li(Reg.at, dim)
        asm.bge(Reg.s4, Reg.at, "slice_done")
        asm.muli(Reg.s5, Reg.s4, plane)       # z * plane
        asm.muli(Reg.t2, Reg.s3, VOXEL_BYTES)  # + x * voxel
        asm.add(Reg.s5, Reg.s5, Reg.t2)
        emit_scanline(Reg.s5)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("x_loop")
        asm.jmp("slice_done")

        # y slice: one scanline per z plane at row `pos`.
        asm.label("slice_y")
        if manual_hints:
            asm.li(Reg.s4, 0)
            asm.label("hy_loop")
            asm.li(Reg.at, dim)
            asm.bge(Reg.s4, Reg.at, "hy_done")
            asm.muli(Reg.s5, Reg.s4, plane)
            asm.muli(Reg.t2, Reg.s3, line)
            asm.add(Reg.s5, Reg.s5, Reg.t2)
            emit_hint(Reg.s5)
            asm.addi(Reg.s4, Reg.s4, 1)
            asm.jmp("hy_loop")
            asm.label("hy_done")
        asm.li(Reg.s4, 0)  # z
        asm.label("y_loop")
        asm.li(Reg.at, dim)
        asm.bge(Reg.s4, Reg.at, "slice_done")
        asm.muli(Reg.s5, Reg.s4, plane)   # z * plane
        asm.muli(Reg.t2, Reg.s3, line)    # + y * line
        asm.add(Reg.s5, Reg.s5, Reg.t2)
        emit_scanline(Reg.s5)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("y_loop")
        asm.jmp("slice_done")

        # z slice: one contiguous plane, read scanline by scanline.
        asm.label("slice_z")
        if manual_hints:
            # A z slice is one contiguous extent: a single batched hint.
            asm.mov(Reg.a0, Reg.s1)
            asm.muli(Reg.a1, Reg.s3, plane)
            asm.li(Reg.a2, plane)
            asm.syscall(SYS_HINT_FD_SEG)
        asm.li(Reg.s4, 0)  # row
        asm.label("z_loop")
        asm.li(Reg.at, dim)
        asm.bge(Reg.s4, Reg.at, "slice_done")
        asm.muli(Reg.s5, Reg.s3, plane)   # z * plane
        asm.muli(Reg.t2, Reg.s4, line)    # + row * line
        asm.add(Reg.s5, Reg.s5, Reg.t2)
        emit_scanline(Reg.s5)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("z_loop")

        asm.label("slice_done")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("slices_loop")

        asm.label("done")
        asm.li(Reg.a0, workload.nslices)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)

    binary = asm.finish()
    binary.declared_size_bytes = PAPER_ORIGINAL_SIZE
    binary.declared_text_fraction = 0.8
    return binary
