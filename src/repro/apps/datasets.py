"""Deterministic synthetic dataset generators.

The paper's inputs are scaled down roughly 8x (see DESIGN.md section 2) but
keep their structural properties:

* **Agrep corpus** — many small-to-medium text files (the paper greps 1349
  Digital UNIX kernel source files occupying 2928 blocks); file sizes are
  heavy-tailed like real source trees;
* **Gnuld objects** — object files with a file header pointing at a symbol
  header pointing at symbol/string tables that in turn locate debug blobs
  and sections (the offset-chasing structure that creates Gnuld's data
  dependences);
* **XDataSlice dataset** — one large z-major 3-D voxel file read far
  beyond file-cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.fs.filesystem import FileSystem, Inode
from repro.sim.rng import DeterministicRng

# Gnuld object-file layout (u64 little-endian fields) -------------------------

OBJ_MAGIC = 0x6F626A31  # "obj1"

#: File header: magic, symhdr_off, file_size.
OBJ_HEADER_BYTES = 24
#: Symbol header: symtab_off, symtab_bytes, strtab_off, strtab_bytes,
#: nsections, ndebug.
OBJ_SYMHDR_BYTES = 48
#: One symbol-table record: (offset, length).
OBJ_RECORD_BYTES = 16


def _u64(value: int) -> bytes:
    return (value & ((1 << 64) - 1)).to_bytes(8, "little")


# ---------------------------------------------------------------------------
# Agrep
# ---------------------------------------------------------------------------

def generate_agrep_corpus(
    fs: FileSystem,
    nfiles: int,
    seed: int,
    min_kb: int = 2,
    max_kb: int = 120,
    directory: str = "src",
) -> List[Inode]:
    """Create ``nfiles`` text files with a heavy-tailed size distribution."""
    rng = DeterministicRng(seed, "agrep-corpus")
    inodes = []
    for i in range(nfiles):
        size = rng.pareto_int(1.3, min_kb * 1024, max_kb * 1024)
        data = rng.bytes(size)
        inodes.append(fs.create(f"{directory}/file{i:04d}.c", data))
    return inodes


# ---------------------------------------------------------------------------
# Gnuld
# ---------------------------------------------------------------------------

@dataclass
class ObjectFileSpec:
    """Shape of one generated object file."""

    path: str
    size: int
    nsections: int
    ndebug: int
    section_offsets: List[int] = field(default_factory=list)
    section_lengths: List[int] = field(default_factory=list)
    debug_offsets: List[int] = field(default_factory=list)
    debug_lengths: List[int] = field(default_factory=list)
    #: Relocation blobs, one per section, located via a pointer stored in
    #: the first 16 bytes of the section itself (data dependence that
    #: persists through the section pass, as in the real linker).
    reloc_offsets: List[int] = field(default_factory=list)
    reloc_lengths: List[int] = field(default_factory=list)


def generate_gnuld_objects(
    fs: FileSystem,
    nfiles: int,
    seed: int,
    max_sections: int = 9,
    directory: str = "obj",
) -> List[ObjectFileSpec]:
    """Create linkable object files with the paper's offset-chasing layout.

    Layout of each file::

        [file header][...][symbol header][symbol table][string table]
        [debug blobs...][sections...]

    The symbol header is placed at a file-dependent offset (recorded in the
    file header) so that reading it *requires* the header's contents —
    the data dependence that limits speculative Gnuld.
    """
    rng = DeterministicRng(seed, "gnuld-objects")
    specs = []
    for i in range(nfiles):
        nsections = rng.randint(4, max_sections)
        ndebug = rng.randint(6, 9)
        # The symbol header lands a few blocks into the file — reading it
        # requires the file header's contents *and* a separate disk block.
        # Every position is strongly file-dependent so that stale offsets
        # (speculation reading last file's header out of the buffer) point
        # at the *wrong* blocks, as they would in a real link.
        symhdr_off = rng.randint(1 * 8192, 4 * 8192) & ~511
        symtab_bytes = (nsections + ndebug) * OBJ_RECORD_BYTES + rng.randint(512, 2048)
        strtab_bytes = rng.randint(512, 1536)

        # Symbol and string tables live past the symbol header, in their
        # own block neighbourhood (string table adjacent to symbol table,
        # giving the block reuse the paper's Gnuld shows).
        symtab_off = symhdr_off + (rng.randint(1 * 8192, 5 * 8192) & ~511)
        strtab_off = symtab_off + symtab_bytes
        cursor = strtab_off + strtab_bytes + rng.randint(0, 16 * 1024)

        debug_offsets, debug_lengths = [], []
        for _ in range(ndebug):
            length = rng.randint(64, 384)
            debug_offsets.append(cursor)
            debug_lengths.append(length)
            cursor += length + rng.randint(0, 256)

        section_offsets, section_lengths = [], []
        cursor += rng.randint(0, 12 * 1024)
        for _ in range(nsections):
            length = max(64, rng.randint(1024, 12 * 1024))
            section_offsets.append(cursor)
            section_lengths.append(length)
            cursor += length + rng.randint(0, 4096)

        # Relocation area: one blob per section, scattered near the end of
        # the file.  Each section's first 16 bytes point at its blob.
        reloc_offsets, reloc_lengths = [], []
        cursor += rng.randint(0, 8 * 1024)
        for _ in range(nsections):
            length = rng.randint(512, 2048)
            reloc_offsets.append(cursor)
            reloc_lengths.append(length)
            cursor += length + rng.randint(0, 4096)

        size = cursor + rng.randint(0, 512)
        blob = bytearray(rng.bytes(size))

        for off, r_off, r_len in zip(section_offsets, reloc_offsets, reloc_lengths):
            blob[off:off + 8] = _u64(r_off)
            blob[off + 8:off + 16] = _u64(r_len)

        blob[0:8] = _u64(OBJ_MAGIC)
        blob[8:16] = _u64(symhdr_off)
        blob[16:24] = _u64(size)

        sym = symhdr_off
        blob[sym:sym + 8] = _u64(symtab_off)
        blob[sym + 8:sym + 16] = _u64(symtab_bytes)
        blob[sym + 16:sym + 24] = _u64(strtab_off)
        blob[sym + 24:sym + 32] = _u64(strtab_bytes)
        blob[sym + 32:sym + 40] = _u64(nsections)
        blob[sym + 40:sym + 48] = _u64(ndebug)

        cursor = symtab_off
        for off, length in zip(section_offsets, section_lengths):
            blob[cursor:cursor + 8] = _u64(off)
            blob[cursor + 8:cursor + 16] = _u64(length)
            cursor += OBJ_RECORD_BYTES
        for off, length in zip(debug_offsets, debug_lengths):
            blob[cursor:cursor + 8] = _u64(off)
            blob[cursor + 8:cursor + 16] = _u64(length)
            cursor += OBJ_RECORD_BYTES

        path = f"{directory}/module{i:04d}.o"
        fs.create(path, bytes(blob))
        specs.append(
            ObjectFileSpec(
                path=path,
                size=size,
                nsections=nsections,
                ndebug=ndebug,
                section_offsets=section_offsets,
                section_lengths=section_lengths,
                debug_offsets=debug_offsets,
                debug_lengths=debug_lengths,
                reloc_offsets=reloc_offsets,
                reloc_lengths=reloc_lengths,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# XDataSlice
# ---------------------------------------------------------------------------

def generate_xds_dataset(
    fs: FileSystem,
    dim: int,
    seed: int,
    path: str = "data/volume.xds",
    voxel_bytes: int = 4,
) -> Inode:
    """Create the z-major ``dim**3`` voxel dataset file.

    Voxel values are irrelevant to control flow, so the bulk is zeros with
    a thin deterministic sprinkle for realism.
    """
    rng = DeterministicRng(seed, "xds-dataset")
    size = dim * dim * dim * voxel_bytes
    blob = bytearray(size)
    # Sprinkle a deterministic pattern so reads return non-trivial data.
    for _ in range(min(4096, size // 64)):
        pos = rng.randint(0, size - 1)
        blob[pos] = rng.randint(1, 255)
    return fs.create(path, bytes(blob))


def xds_slice_plan(
    dim: int,
    nslices: int,
    seed: int,
) -> List[int]:
    """(axis, position) pairs for the slice sequence, flattened.

    axis 0 = x (worst locality: one voxel run per scanline), 1 = y
    (strided scanlines), 2 = z (one contiguous plane).  XDataSlice's
    benchmark retrieves random slices; we bias away from x slices, whose
    read count would dwarf the others.
    """
    rng = DeterministicRng(seed, "xds-slices")
    plan = []
    for _ in range(nslices):
        axis = rng.choice([1, 1, 2, 1, 2])  # y-heavy mix like the paper's runs
        position = rng.randint(0, dim - 1)
        plan.extend((axis, position))
    return plan
