"""Gnuld (v2.5.2 in the paper): the object code linker.

"Gnuld first reads each object file's file header, symbol header, symbol
tables and string tables.  The location of each file's symbol header is
stored in its file header, and the locations of its symbol and string
tables are stored in its symbol header.  Gnuld then makes up to nine small,
non-sequential reads in each object file to gather debugging information.
The locations of these reads are determined from the symbol tables.
Finally, Gnuld loops through the different non-debugging sections that
appear in an object file, reading the corresponding section from each of
the object files."

The pass-1 reads form per-file dependence chains (each read's location
comes from the previous read's data), which is exactly what limits the
speculating Gnuld: restarted speculation reads a stale buffer, computes a
garbage offset, and issues erroneous hints — the paper's 2,336 inaccurate
hints.  The pass-2 (debug) and pass-3 (section) reads take their locations
from tables pass 1 stored in memory, so speculation can run ahead there.

The *manual* variant mirrors Patterson's restructured Gnuld: the passes are
reorganized so that batches of hints can be disclosed before each group of
reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.datasets import (
    OBJ_HEADER_BYTES,
    OBJ_SYMHDR_BYTES,
    ObjectFileSpec,
    generate_gnuld_objects,
)
from repro.fs.filesystem import FileSystem
from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import (
    SEEK_SET,
    SYS_EXIT,
    SYS_HINT_FD_SEG,
    SYS_HINT_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    SYS_WRITE,
    Reg,
)
from repro.vm.stdlib import emit_stdlib

#: Paper Gnuld binary size (derived from Table 3: 2408 KB at +349%).
PAPER_ORIGINAL_SIZE = 536 * 1024

#: What the static-analysis pass (``repro analyze``) is expected to prove
#: about this binary.  Gnuld is the documented limitation: its pass
#: dispatch loads ``process_fn`` from memory, so the CALLR target is
#: unprovable, speculation may enter any function, and nothing is dead —
#: zero elisions, one unresolved-transfer warning.
ANALYSIS_EXPECTATIONS = {
    "wrapped_stores": 15,
    "elidable_stores": 0,
    "resolved_transfers": 0,
    "lint_errors": 0,
    "lint_warnings": 1,       # the unresolved CALLR in the pass loop
}

MAX_SECTIONS = 9
MAX_DEBUG = 9

SYMTAB_BUF_BYTES = 4096
STRTAB_BUF_BYTES = 2048
DEBUG_BUF_BYTES = 512
SECTION_BUF_BYTES = 16384


@dataclass(frozen=True)
class GnuldWorkload:
    """Scaled-down version of the paper's 562-binary kernel link."""

    nfiles: int = 72
    seed: int = 7
    #: Pass-1 per-file processing (symbol resolution bookkeeping).
    pass1_cycles: int = 20_000
    pass1_loads: int = 2_400
    pass1_stores: int = 500
    #: Pass-2 per-debug-read processing.
    debug_cycles: int = 6_000
    debug_loads: int = 720
    debug_stores: int = 150
    #: Pass-3 per-section processing (relocation + output production).
    section_cycles: int = 32_000
    section_loads: int = 3_840
    section_stores: int = 800

    def scaled(self, factor: float) -> "GnuldWorkload":
        return GnuldWorkload(
            nfiles=max(4, int(self.nfiles * factor)),
            seed=self.seed,
            pass1_cycles=self.pass1_cycles,
            pass1_loads=self.pass1_loads,
            pass1_stores=self.pass1_stores,
            debug_cycles=self.debug_cycles,
            debug_loads=self.debug_loads,
            debug_stores=self.debug_stores,
            section_cycles=self.section_cycles,
            section_loads=self.section_loads,
            section_stores=self.section_stores,
        )


def build_gnuld(
    fs: FileSystem,
    workload: GnuldWorkload,
    manual_hints: bool = False,
) -> Binary:
    """Create the object files in ``fs`` and assemble the Gnuld binary."""
    specs = generate_gnuld_objects(
        fs, workload.nfiles, workload.seed, max_sections=MAX_SECTIONS
    )
    fs.create("out/kernel", b"")

    builder = _GnuldBuilder(workload, specs, manual_hints)
    return builder.build()


class _GnuldBuilder:
    """Assembles the (long) Gnuld program."""

    def __init__(
        self,
        workload: GnuldWorkload,
        specs: List[ObjectFileSpec],
        manual_hints: bool,
    ) -> None:
        self.wl = workload
        self.specs = specs
        self.manual = manual_hints
        self.asm = Assembler("gnuld-manual" if manual_hints else "gnuld")

    # -- data layout ---------------------------------------------------------

    def _emit_data(self) -> None:
        asm = self.asm
        path_addrs = [
            asm.data_asciiz(f"objpath{i}", spec.path)
            for i, spec in enumerate(self.specs)
        ]
        asm.data_words("paths", path_addrs)
        asm.data_asciiz("outpath", "out/kernel")
        n = self.wl.nfiles
        asm.data_words("fds", [0] * n)
        asm.data_words("nsect_arr", [0] * n)
        asm.data_words("ndbg_arr", [0] * n)
        asm.data_words("symhdr_off_arr", [0] * n)
        asm.data_words("symtab_off_arr", [0] * n)
        asm.data_words("symtab_len_arr", [0] * n)
        asm.data_words("strtab_off_arr", [0] * n)
        asm.data_words("strtab_len_arr", [0] * n)
        asm.data_words("sect_off_arr", [0] * (n * MAX_SECTIONS))
        asm.data_words("sect_len_arr", [0] * (n * MAX_SECTIONS))
        asm.data_words("dbg_off_arr", [0] * (n * MAX_DEBUG))
        asm.data_words("dbg_len_arr", [0] * (n * MAX_DEBUG))
        asm.data_words("reloc_off_arr", [0] * (n * MAX_SECTIONS))
        asm.data_words("reloc_len_arr", [0] * (n * MAX_SECTIONS))
        asm.data_space("hdrbuf", 32)
        asm.data_space("symhdrbuf", 64)
        asm.data_space("symtabbuf", SYMTAB_BUF_BYTES)
        asm.data_space("strtabbuf", STRTAB_BUF_BYTES)
        asm.data_space("dbgbuf", DEBUG_BUF_BYTES)
        asm.data_space("sectbuf", SECTION_BUF_BYTES)
        asm.data_space("relocbuf", 2048)

    # -- common emission helpers -----------------------------------------------

    def _load_elem(self, array: str, index_reg: Reg, dest: Reg) -> None:
        """dest = array[index_reg] (8-byte elements)."""
        asm = self.asm
        asm.la(Reg.t8, array)
        asm.shli(Reg.t9, index_reg, 3)
        asm.add(Reg.t8, Reg.t8, Reg.t9)
        asm.load(dest, Reg.t8, 0)

    def _store_elem(self, array: str, index_reg: Reg, src: Reg) -> None:
        """array[index_reg] = src."""
        asm = self.asm
        asm.la(Reg.t8, array)
        asm.shli(Reg.t9, index_reg, 3)
        asm.add(Reg.t8, Reg.t8, Reg.t9)
        asm.store(src, Reg.t8, 0)

    def _index_2d(self, file_reg: Reg, inner_reg: Reg, width: int, dest: Reg) -> None:
        """dest = file_reg * width + inner_reg (flat 2-D index)."""
        asm = self.asm
        asm.muli(dest, file_reg, width)
        asm.add(dest, dest, inner_reg)

    def _lseek(self, fd: Reg, offset: Reg) -> None:
        asm = self.asm
        asm.mov(Reg.a0, fd)
        asm.mov(Reg.a1, offset)
        asm.li(Reg.a2, SEEK_SET)
        asm.syscall(SYS_LSEEK)

    def _read(self, fd: Reg, buf_symbol: str, length_reg: Reg) -> None:
        asm = self.asm
        asm.mov(Reg.a0, fd)
        asm.la(Reg.a1, buf_symbol)
        asm.mov(Reg.a2, length_reg)
        asm.syscall(SYS_READ)

    def _read_imm(self, fd: Reg, buf_symbol: str, length: int) -> None:
        asm = self.asm
        asm.mov(Reg.a0, fd)
        asm.la(Reg.a1, buf_symbol)
        asm.li(Reg.a2, length)
        asm.syscall(SYS_READ)

    # -- program -------------------------------------------------------------------

    def build(self) -> Binary:
        asm = self.asm
        emit_stdlib(asm)
        self._emit_data()
        asm.entry("main")

        with asm.function("process_section"):
            # Section processing behind a function pointer (exercises the
            # dynamic control-transfer handling routine during speculation).
            asm.cwork(self.wl.section_cycles, self.wl.section_loads,
                      self.wl.section_stores)
            asm.load(Reg.t0, Reg.a0, 0)  # touch the section buffer
            asm.ret()

        asm.data_word("process_fn", 0)

        with asm.function("main"):
            self._emit_prologue()
            if self.manual:
                self._emit_manual_header_hints()
                self._emit_pass1_manual()
            else:
                self._emit_pass1()
            self._emit_pass2()
            if self.manual:
                self._emit_pass3_manual()
            else:
                self._emit_pass3()
            self._emit_epilogue()

        binary = asm.finish()
        binary.declared_size_bytes = PAPER_ORIGINAL_SIZE
        binary.declared_text_fraction = 0.75
        return binary

    # -- program sections -------------------------------------------------------------

    def _emit_prologue(self) -> None:
        asm = self.asm
        # Stash the section-processing function's address (a function
        # pointer flowing through memory, as relocation info would show).
        asm.la(Reg.t0, "process_section")
        asm.la(Reg.t1, "process_fn")
        asm.store(Reg.t0, Reg.t1, 0)
        # Open the output file.
        asm.la(Reg.a0, "outpath")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s6, Reg.v0)  # s6 = output fd for the whole run

    def _emit_manual_header_hints(self) -> None:
        """Manual variant: disclose every file header up front."""
        asm = self.asm
        asm.li(Reg.s0, 0)
        asm.label("mh_loop")
        asm.li(Reg.at, self.wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "mh_done")
        self._load_elem("paths", Reg.s0, Reg.a0)
        asm.li(Reg.a1, 0)
        asm.li(Reg.a2, OBJ_HEADER_BYTES)
        asm.syscall(SYS_HINT_SEG)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("mh_loop")
        asm.label("mh_done")

    def _emit_pass1(self) -> None:
        """Per file: header -> symbol header -> symbol table -> string
        table, parsing each into memory tables."""
        asm = self.asm
        wl = self.wl

        asm.li(Reg.s0, 0)  # file index
        asm.label("p1_loop")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "p1_done")

        # open
        self._load_elem("paths", Reg.s0, Reg.a0)
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        self._store_elem("fds", Reg.s0, Reg.s1)

        # read the file header at offset 0
        self._read_imm(Reg.s1, "hdrbuf", OBJ_HEADER_BYTES)
        asm.la(Reg.t0, "hdrbuf")
        asm.load(Reg.s2, Reg.t0, 8)  # symhdr_off (data dependence!)
        self._store_elem("symhdr_off_arr", Reg.s0, Reg.s2)

        # read the symbol header at symhdr_off
        self._lseek(Reg.s1, Reg.s2)
        self._read_imm(Reg.s1, "symhdrbuf", OBJ_SYMHDR_BYTES)
        asm.la(Reg.t0, "symhdrbuf")
        asm.load(Reg.s2, Reg.t0, 0)   # symtab_off
        asm.load(Reg.s3, Reg.t0, 8)   # symtab_bytes
        asm.load(Reg.s4, Reg.t0, 16)  # strtab_off
        asm.load(Reg.s5, Reg.t0, 24)  # strtab_bytes
        asm.load(Reg.t1, Reg.t0, 32)  # nsections
        self._store_elem("nsect_arr", Reg.s0, Reg.t1)
        asm.load(Reg.t1, Reg.t0, 40)  # ndebug
        self._store_elem("ndbg_arr", Reg.s0, Reg.t1)

        # read the symbol table (location from the symbol header)
        self._lseek(Reg.s1, Reg.s2)
        self._read(Reg.s1, "symtabbuf", Reg.s3)

        # parse section and debug records from symtabbuf
        self._emit_parse_symtab("p1")

        # read the string table (location from the symbol header)
        self._lseek(Reg.s1, Reg.s4)
        self._read(Reg.s1, "strtabbuf", Reg.s5)

        # per-file symbol processing
        asm.cwork(wl.pass1_cycles, wl.pass1_loads, wl.pass1_stores)

        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("p1_loop")
        asm.label("p1_done")

    def _emit_parse_symtab(self, prefix: str) -> None:
        """Parse symtabbuf for file s0 into the 2-D section/debug arrays."""
        asm = self.asm
        # section records
        asm.li(Reg.s7, 0)  # s
        asm.label(f"{prefix}_sections")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, f"{prefix}_sections_done")
        asm.la(Reg.t0, "symtabbuf")
        asm.shli(Reg.t1, Reg.s7, 4)  # s * 16
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.t2, Reg.t0, 0)  # section offset
        asm.load(Reg.t3, Reg.t0, 8)  # section length
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._store_elem("sect_off_arr", Reg.t4, Reg.t2)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._store_elem("sect_len_arr", Reg.t4, Reg.t3)
        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp(f"{prefix}_sections")
        asm.label(f"{prefix}_sections_done")

        # debug records
        asm.li(Reg.s7, 0)  # d
        asm.label(f"{prefix}_debug")
        self._load_elem("ndbg_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, f"{prefix}_debug_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.t5)
        asm.add(Reg.t5, Reg.t5, Reg.s7)  # nsect + d
        asm.la(Reg.t0, "symtabbuf")
        asm.shli(Reg.t1, Reg.t5, 4)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.t2, Reg.t0, 0)
        asm.load(Reg.t3, Reg.t0, 8)
        self._index_2d(Reg.s0, Reg.s7, MAX_DEBUG, Reg.t4)
        self._store_elem("dbg_off_arr", Reg.t4, Reg.t2)
        self._index_2d(Reg.s0, Reg.s7, MAX_DEBUG, Reg.t4)
        self._store_elem("dbg_len_arr", Reg.t4, Reg.t3)
        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp(f"{prefix}_debug")
        asm.label(f"{prefix}_debug_done")

    def _emit_pass1_manual(self) -> None:
        """The restructured pass 1 of the manually hinted Gnuld.

        Patterson's Gnuld involved "significantly restructuring the code so
        that hints could be issued earlier": the dependence chain is broken
        into sub-passes over *all* files, and after each sub-pass the next
        round of reads (whose locations are now known) is disclosed as a
        batch of hints.
        """
        asm = self.asm
        wl = self.wl

        # p1a: open every file and read its header (headers were hinted up
        # front by _emit_manual_header_hints).
        asm.li(Reg.s0, 0)
        asm.label("m1a_loop")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m1a_done")
        self._load_elem("paths", Reg.s0, Reg.a0)
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        self._store_elem("fds", Reg.s0, Reg.s1)
        self._read_imm(Reg.s1, "hdrbuf", OBJ_HEADER_BYTES)
        asm.la(Reg.t0, "hdrbuf")
        asm.load(Reg.s2, Reg.t0, 8)
        self._store_elem("symhdr_off_arr", Reg.s0, Reg.s2)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m1a_loop")
        asm.label("m1a_done")

        # hint every symbol header (locations now in memory)
        asm.li(Reg.s0, 0)
        asm.label("m1a_hints")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m1a_hints_done")
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._load_elem("symhdr_off_arr", Reg.s0, Reg.a1)
        asm.li(Reg.a2, OBJ_SYMHDR_BYTES)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m1a_hints")
        asm.label("m1a_hints_done")

        # p1b: read every symbol header; record table locations.
        asm.li(Reg.s0, 0)
        asm.label("m1b_loop")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m1b_done")
        self._load_elem("fds", Reg.s0, Reg.s1)
        self._load_elem("symhdr_off_arr", Reg.s0, Reg.s2)
        self._lseek(Reg.s1, Reg.s2)
        self._read_imm(Reg.s1, "symhdrbuf", OBJ_SYMHDR_BYTES)
        asm.la(Reg.t0, "symhdrbuf")
        asm.load(Reg.t1, Reg.t0, 0)
        self._store_elem("symtab_off_arr", Reg.s0, Reg.t1)
        asm.load(Reg.t1, Reg.t0, 8)
        self._store_elem("symtab_len_arr", Reg.s0, Reg.t1)
        asm.load(Reg.t1, Reg.t0, 16)
        self._store_elem("strtab_off_arr", Reg.s0, Reg.t1)
        asm.load(Reg.t1, Reg.t0, 24)
        self._store_elem("strtab_len_arr", Reg.s0, Reg.t1)
        asm.load(Reg.t1, Reg.t0, 32)
        self._store_elem("nsect_arr", Reg.s0, Reg.t1)
        asm.load(Reg.t1, Reg.t0, 40)
        self._store_elem("ndbg_arr", Reg.s0, Reg.t1)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m1b_loop")
        asm.label("m1b_done")

        # hint every symbol table and string table
        asm.li(Reg.s0, 0)
        asm.label("m1b_hints")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m1b_hints_done")
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._load_elem("symtab_off_arr", Reg.s0, Reg.a1)
        self._load_elem("symtab_len_arr", Reg.s0, Reg.a2)
        asm.syscall(SYS_HINT_FD_SEG)
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._load_elem("strtab_off_arr", Reg.s0, Reg.a1)
        self._load_elem("strtab_len_arr", Reg.s0, Reg.a2)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m1b_hints")
        asm.label("m1b_hints_done")

        # p1c: read + parse every symbol table, then the string table.
        asm.li(Reg.s0, 0)
        asm.label("m1c_loop")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m1c_done")
        self._load_elem("fds", Reg.s0, Reg.s1)
        self._load_elem("symtab_off_arr", Reg.s0, Reg.s2)
        self._load_elem("symtab_len_arr", Reg.s0, Reg.s3)
        self._lseek(Reg.s1, Reg.s2)
        self._read(Reg.s1, "symtabbuf", Reg.s3)
        self._emit_parse_symtab("m1c")
        self._load_elem("strtab_off_arr", Reg.s0, Reg.s4)
        self._load_elem("strtab_len_arr", Reg.s0, Reg.s5)
        self._lseek(Reg.s1, Reg.s4)
        self._read(Reg.s1, "strtabbuf", Reg.s5)
        asm.cwork(wl.pass1_cycles, wl.pass1_loads, wl.pass1_stores)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m1c_loop")
        asm.label("m1c_done")

    def _emit_pass2(self) -> None:
        """Per file: up to nine small non-sequential debug reads whose
        locations come from the in-memory tables built in pass 1."""
        asm = self.asm
        wl = self.wl

        if self.manual:
            # The restructured Gnuld hints the whole debug pass up front.
            self._emit_2d_hint_loop("mh2", "ndbg_arr", "dbg_off_arr",
                                    "dbg_len_arr", MAX_DEBUG)

        asm.li(Reg.s0, 0)
        asm.label("p2_loop")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "p2_done")
        self._load_elem("fds", Reg.s0, Reg.s1)

        asm.li(Reg.s7, 0)  # debug record index
        asm.label("p2_inner")
        self._load_elem("ndbg_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "p2_inner_done")
        self._index_2d(Reg.s0, Reg.s7, MAX_DEBUG, Reg.t4)
        self._load_elem("dbg_off_arr", Reg.t4, Reg.s2)
        self._index_2d(Reg.s0, Reg.s7, MAX_DEBUG, Reg.t4)
        self._load_elem("dbg_len_arr", Reg.t4, Reg.s3)
        self._lseek(Reg.s1, Reg.s2)
        self._read(Reg.s1, "dbgbuf", Reg.s3)
        asm.cwork(wl.debug_cycles, wl.debug_loads, wl.debug_stores)
        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp("p2_inner")
        asm.label("p2_inner_done")

        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("p2_loop")
        asm.label("p2_done")

    def _emit_pass3(self) -> None:
        """Section-major pass: for each section index, read that section
        from every file, process it (through a function pointer), and
        write output for every other section."""
        asm = self.asm
        wl = self.wl

        asm.li(Reg.s7, 0)  # section index (outer loop: section-major!)
        asm.label("p3_loop")
        asm.li(Reg.at, MAX_SECTIONS)
        asm.bge(Reg.s7, Reg.at, "p3_done")

        asm.li(Reg.s0, 0)  # file index
        asm.label("p3_files")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "p3_files_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "p3_skip")

        self._load_elem("fds", Reg.s0, Reg.s1)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_off_arr", Reg.t4, Reg.s2)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_len_arr", Reg.t4, Reg.s3)
        self._lseek(Reg.s1, Reg.s2)
        self._read(Reg.s1, "sectbuf", Reg.s3)

        # The section's first two words locate its relocation blob — a
        # data dependence that persists through the whole section pass,
        # which is what keeps the speculating Gnuld from running ahead
        # here (Section 4.8: "data dependencies ... prevent speculative
        # execution from using the additional cycles").
        asm.la(Reg.t0, "sectbuf")
        asm.load(Reg.s4, Reg.t0, 0)  # reloc offset
        asm.load(Reg.s5, Reg.t0, 8)  # reloc length

        # process the section through the function pointer
        asm.la(Reg.t0, "process_fn")
        asm.load(Reg.t1, Reg.t0, 0)
        asm.la(Reg.a0, "sectbuf")
        asm.push(Reg.ra)
        asm.push(Reg.s3)
        asm.callr(Reg.t1)
        asm.pop(Reg.s3)
        asm.pop(Reg.ra)

        # apply the relocations
        self._lseek(Reg.s1, Reg.s4)
        self._read(Reg.s1, "relocbuf", Reg.s5)
        asm.cwork(self.wl.debug_cycles, self.wl.debug_loads,
                  self.wl.debug_stores)

        # write output for every other section index
        asm.andi(Reg.t0, Reg.s7, 1)
        asm.bne(Reg.t0, Reg.zero, "p3_skip")
        asm.mov(Reg.a0, Reg.s6)
        asm.la(Reg.a1, "sectbuf")
        asm.mov(Reg.a2, Reg.s3)
        asm.syscall(SYS_WRITE)

        asm.label("p3_skip")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("p3_files")
        asm.label("p3_files_done")

        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp("p3_loop")
        asm.label("p3_done")

    def _emit_pass3_manual(self) -> None:
        """The restructured section pass of the manually hinted Gnuld.

        For each section index, (a) read and process that section from
        every file while recording the relocation pointers the data
        reveals, (b) disclose the whole batch of relocation reads, then
        (c) perform them.  This is the kind of reorganization the paper
        attributes to the manually modified Gnuld.
        """
        asm = self.asm
        wl = self.wl

        asm.li(Reg.s7, 0)  # section index
        asm.label("m3_loop")
        asm.li(Reg.at, MAX_SECTIONS)
        asm.bge(Reg.s7, Reg.at, "m3_done")

        # Disclose this section index's reads (in access order — TIP's
        # hint queues are ordered disclosures of future accesses).
        asm.li(Reg.s0, 0)
        asm.label("m3h_hints")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m3h_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "m3h_skip")
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_off_arr", Reg.t4, Reg.a1)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_len_arr", Reg.t4, Reg.a2)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.label("m3h_skip")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m3h_hints")
        asm.label("m3h_done")

        # (a) read + process every file's section s7
        asm.li(Reg.s0, 0)
        asm.label("m3a_files")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m3a_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "m3a_skip")

        self._load_elem("fds", Reg.s0, Reg.s1)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_off_arr", Reg.t4, Reg.s2)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_len_arr", Reg.t4, Reg.s3)
        self._lseek(Reg.s1, Reg.s2)
        self._read(Reg.s1, "sectbuf", Reg.s3)

        # record the relocation pointer the section data reveals
        asm.la(Reg.t0, "sectbuf")
        asm.load(Reg.s4, Reg.t0, 0)
        asm.load(Reg.s5, Reg.t0, 8)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._store_elem("reloc_off_arr", Reg.t4, Reg.s4)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._store_elem("reloc_len_arr", Reg.t4, Reg.s5)

        # process the section through the function pointer
        asm.la(Reg.t0, "process_fn")
        asm.load(Reg.t1, Reg.t0, 0)
        asm.la(Reg.a0, "sectbuf")
        asm.push(Reg.ra)
        asm.push(Reg.s3)
        asm.callr(Reg.t1)
        asm.pop(Reg.s3)
        asm.pop(Reg.ra)

        # write output for every other section index
        asm.andi(Reg.t0, Reg.s7, 1)
        asm.bne(Reg.t0, Reg.zero, "m3a_skip")
        asm.mov(Reg.a0, Reg.s6)
        asm.la(Reg.a1, "sectbuf")
        asm.mov(Reg.a2, Reg.s3)
        asm.syscall(SYS_WRITE)

        asm.label("m3a_skip")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m3a_files")
        asm.label("m3a_done")

        # (b) disclose the whole batch of relocation reads
        asm.li(Reg.s0, 0)
        asm.label("m3b_hints")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m3b_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "m3b_skip")
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("reloc_off_arr", Reg.t4, Reg.a1)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("reloc_len_arr", Reg.t4, Reg.a2)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.label("m3b_skip")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m3b_hints")
        asm.label("m3b_done")

        # (c) apply the relocations
        asm.li(Reg.s0, 0)
        asm.label("m3c_files")
        asm.li(Reg.at, wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "m3c_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "m3c_skip")
        self._load_elem("fds", Reg.s0, Reg.s1)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("reloc_off_arr", Reg.t4, Reg.s4)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("reloc_len_arr", Reg.t4, Reg.s5)
        self._lseek(Reg.s1, Reg.s4)
        self._read(Reg.s1, "relocbuf", Reg.s5)
        asm.cwork(wl.debug_cycles, wl.debug_loads, wl.debug_stores)
        asm.label("m3c_skip")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("m3c_files")
        asm.label("m3c_done")

        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp("m3_loop")
        asm.label("m3_done")

    def _emit_section_major_hints(self) -> None:
        """Manual pass-3 hints, disclosed in exact (section-major) order."""
        asm = self.asm
        asm.li(Reg.s7, 0)
        asm.label("mh3_loop")
        asm.li(Reg.at, MAX_SECTIONS)
        asm.bge(Reg.s7, Reg.at, "mh3_done")
        asm.li(Reg.s0, 0)
        asm.label("mh3_files")
        asm.li(Reg.at, self.wl.nfiles)
        asm.bge(Reg.s0, Reg.at, "mh3_files_done")
        self._load_elem("nsect_arr", Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, "mh3_skip")
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_off_arr", Reg.t4, Reg.a1)
        self._index_2d(Reg.s0, Reg.s7, MAX_SECTIONS, Reg.t4)
        self._load_elem("sect_len_arr", Reg.t4, Reg.a2)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.label("mh3_skip")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("mh3_files")
        asm.label("mh3_files_done")
        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp("mh3_loop")
        asm.label("mh3_done")

    def _emit_2d_hint_loop(
        self,
        prefix: str,
        count_array: str,
        off_array: str,
        len_array: str,
        width: int,
    ) -> None:
        """File-major hint batch over a (count, offsets, lengths) table."""
        asm = self.asm
        asm.li(Reg.s0, 0)
        asm.label(f"{prefix}_loop")
        asm.li(Reg.at, self.wl.nfiles)
        asm.bge(Reg.s0, Reg.at, f"{prefix}_done")
        asm.li(Reg.s7, 0)
        asm.label(f"{prefix}_inner")
        self._load_elem(count_array, Reg.s0, Reg.at)
        asm.bge(Reg.s7, Reg.at, f"{prefix}_inner_done")
        self._load_elem("fds", Reg.s0, Reg.a0)
        self._index_2d(Reg.s0, Reg.s7, width, Reg.t4)
        self._load_elem(off_array, Reg.t4, Reg.a1)
        self._index_2d(Reg.s0, Reg.s7, width, Reg.t4)
        self._load_elem(len_array, Reg.t4, Reg.a2)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.addi(Reg.s7, Reg.s7, 1)
        asm.jmp(f"{prefix}_inner")
        asm.label(f"{prefix}_inner_done")
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp(f"{prefix}_loop")
        asm.label(f"{prefix}_done")

    def _emit_epilogue(self) -> None:
        asm = self.asm
        asm.li(Reg.a0, self.wl.nfiles)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
