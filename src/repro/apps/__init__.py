"""Benchmark applications from the TIP benchmark suite, as SpecVM programs.

Each application comes in two source variants:

* **plain** — the unmodified program (run as the paper's *Original*, and
  fed to the SpecHint tool to produce the *Speculating* executable);
* **manual** — the programmer-hinted version (the paper's *Manual*),
  issuing TIP hints at the points Patterson's restructured applications do.

The applications' access patterns are the paper's:

* :mod:`repro.apps.agrep` — sequential whole-file reads over many files,
  fully determined by the argument list (no data dependence);
* :mod:`repro.apps.gnuld` — header -> symbol-header -> symbol-table read
  chains per object file (strong data dependence), then debug and
  section passes driven by in-memory tables;
* :mod:`repro.apps.xdataslice` — strided scanline reads of random slices
  through a large out-of-core 3-D dataset (no data dependence, little
  locality).
"""

from repro.apps.agrep import AgrepWorkload, build_agrep
from repro.apps.datasets import (
    generate_agrep_corpus,
    generate_gnuld_objects,
    generate_xds_dataset,
)
from repro.apps.gnuld import GnuldWorkload, build_gnuld
from repro.apps.xdataslice import XdsWorkload, build_xdataslice

__all__ = [
    "AgrepWorkload",
    "build_agrep",
    "GnuldWorkload",
    "build_gnuld",
    "XdsWorkload",
    "build_xdataslice",
    "generate_agrep_corpus",
    "generate_gnuld_objects",
    "generate_xds_dataset",
]
