"""Postgres join (extension): the Table 1 database workload.

The paper's Table 1 (Patterson's manually hinted benchmark suite) includes
a Postgres inner join at two selectivities: with 20 % of the outer tuples
matching, manual hints bought 48 %; with 80 %, 69 %.  The paper itself
only transforms Agrep/Gnuld/XDataSlice, so this application is an
*extension*: it lets the SpecHint pipeline be exercised on a database-style
access pattern — a sequential outer-relation scan interleaved with
data-dependent index probes:

    outer heap page (sequential)                 — predictable
      -> matching keys parsed from the page data — available once read
      -> index leaf page (root consulted once)   — computable from key
      -> inner heap page (pointer *in* the leaf) — data-dependent chain

Speculation can hint the outer scan and the leaf probes (their locations
derive from data that is in memory by the time speculation runs), but the
inner heap reads chain through just-read leaf data, Gnuld-style.  The
manual variant batches hints per outer page, as a programmer would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.fs.filesystem import FileSystem
from repro.sim.rng import DeterministicRng
from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import (
    SEEK_SET,
    SYS_EXIT,
    SYS_HINT_FD_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    Reg,
)
from repro.vm.stdlib import emit_stdlib

PAGE = 8192
TUPLES_PER_PAGE = 16
TUPLE_BYTES = PAGE // TUPLES_PER_PAGE  # 512
KEYS_PER_LEAF = 64

#: Rough size of a statically linked Postgres backend of the era.
PAPER_ORIGINAL_SIZE = 1800 * 1024

#: What the static-analysis pass (``repro analyze``) is expected to prove
#: about this binary.  The three live probe-worklist stores stay wrapped;
#: the comparator dispatch CALLR resolves to ``cmp_keys`` statically.
ANALYSIS_EXPECTATIONS = {
    "wrapped_stores": 9,
    "elidable_stores": 6,
    "resolved_transfers": 1,  # callr through la(cmp_keys)
    "lint_errors": 0,
    "lint_warnings": 0,
}


@dataclass(frozen=True)
class PostgresWorkload:
    """An inner join: SELECT ... FROM outer JOIN inner ON key."""

    outer_pages: int = 72
    inner_pages: int = 200
    #: Fraction of outer tuples with a join partner (the paper evaluates
    #: 20 % and 80 %).
    selectivity_pct: int = 20
    seed: int = 23
    #: Per-tuple predicate evaluation cost.
    tuple_cycles: int = 900
    tuple_loads: int = 60
    tuple_stores: int = 10
    #: Per-probe join processing cost.
    probe_cycles: int = 5_000
    probe_loads: int = 420
    probe_stores: int = 90

    def scaled(self, factor: float) -> "PostgresWorkload":
        return PostgresWorkload(
            outer_pages=max(4, int(self.outer_pages * factor)),
            inner_pages=max(8, int(self.inner_pages * factor)),
            selectivity_pct=self.selectivity_pct,
            seed=self.seed,
            tuple_cycles=self.tuple_cycles,
            tuple_loads=self.tuple_loads,
            tuple_stores=self.tuple_stores,
            probe_cycles=self.probe_cycles,
            probe_loads=self.probe_loads,
            probe_stores=self.probe_stores,
        )

    @property
    def ntuples(self) -> int:
        return self.outer_pages * TUPLES_PER_PAGE

    @property
    def nleaves(self) -> int:
        return -(-self.ntuples // KEYS_PER_LEAF)


def _u64(value: int) -> bytes:
    return (value & ((1 << 64) - 1)).to_bytes(8, "little")


def generate_postgres_relations(
    fs: FileSystem, workload: PostgresWorkload
) -> Tuple[object, object, object]:
    """Create outer heap, inner heap, and index files.

    Outer tuple layout (at page*8192 + slot*512): [key u64][match u64].
    Index layout: root page of leaf *offsets*; each leaf holds
    KEYS_PER_LEAF inner-heap byte offsets, indexed by key % KEYS_PER_LEAF.
    """
    rng = DeterministicRng(workload.seed, "postgres")
    ntuples = workload.ntuples

    # Inner heap placement of each key: scattered deterministically.
    inner_offset_of_key: List[int] = []
    for key in range(ntuples):
        page = rng.randint(0, workload.inner_pages - 1)
        inner_offset_of_key.append(page * PAGE)

    # Outer relation.
    outer = bytearray(workload.outer_pages * PAGE)
    keys = list(range(ntuples))
    rng.shuffle(keys)
    matched = 0
    for slot, key in enumerate(keys):
        offset = slot * TUPLE_BYTES
        match = 1 if rng.randint(1, 100) <= workload.selectivity_pct else 0
        matched += match
        outer[offset:offset + 8] = _u64(key)
        outer[offset + 8:offset + 16] = _u64(match)
    outer_inode = fs.create("db/outer.heap", bytes(outer))

    # Index: root page + leaves.
    nleaves = workload.nleaves
    index = bytearray((1 + nleaves) * PAGE)
    for leaf in range(nleaves):
        leaf_offset = (1 + leaf) * PAGE
        index[leaf * 8:leaf * 8 + 8] = _u64(leaf_offset)
        for within in range(KEYS_PER_LEAF):
            key = leaf * KEYS_PER_LEAF + within
            if key >= ntuples:
                break
            at = leaf_offset + within * 8
            index[at:at + 8] = _u64(inner_offset_of_key[key])
    index_inode = fs.create("db/inner.idx", bytes(index))

    # Inner heap (contents otherwise irrelevant to control flow).
    inner_inode = fs.create(
        "db/inner.heap", rng.bytes(workload.inner_pages * PAGE)
    )
    return outer_inode, index_inode, inner_inode


def build_postgres(
    fs: FileSystem,
    workload: PostgresWorkload,
    manual_hints: bool = False,
) -> Binary:
    """Create the relations in ``fs`` and assemble the join program."""
    generate_postgres_relations(fs, workload)
    builder = _PostgresBuilder(workload, manual_hints)
    return builder.build()


class _PostgresBuilder:
    def __init__(self, workload: PostgresWorkload, manual: bool) -> None:
        self.wl = workload
        self.manual = manual
        name = "postgres-manual" if manual else "postgres"
        self.asm = Assembler(name)

    def build(self) -> Binary:
        asm = self.asm
        emit_stdlib(asm)
        wl = self.wl

        asm.data_asciiz("outer_path", "db/outer.heap")
        asm.data_asciiz("index_path", "db/inner.idx")
        asm.data_asciiz("inner_path", "db/inner.heap")
        asm.data_space("outerbuf", PAGE)
        asm.data_space("rootbuf", PAGE)
        asm.data_space("leafbuf", PAGE)
        asm.data_space("innerbuf", PAGE)
        # Per-outer-page probe worklist (key, leaf offset) built during the
        # predicate pass; the manual variant batch-hints from it.
        asm.data_words("probe_keys", [0] * TUPLES_PER_PAGE)
        asm.data_words("probe_leaf_offs", [0] * TUPLES_PER_PAGE)
        asm.data_words("probe_inner_offs", [0] * TUPLES_PER_PAGE)

        asm.entry("main")
        with asm.function("main"):
            self._emit_open_all()
            # Comparator dispatch through a function pointer, the way the
            # real executor selects its row-compare routine.  The target
            # is a provable constant, so static analysis can resolve this
            # CALLR instead of routing it through the handling routine.
            asm.la(Reg.t1, "cmp_keys")
            asm.push(Reg.ra)
            asm.li(Reg.a0, 0)
            asm.li(Reg.a1, 1)
            asm.callr(Reg.t1)
            asm.pop(Reg.ra)
            if self.manual:
                # The outer scan is fully predictable: disclose the whole
                # outer relation up front (one batched segment hint).
                asm.mov(Reg.a0, Reg.s1)
                asm.li(Reg.a1, 0)
                asm.li(Reg.a2, wl.outer_pages * PAGE)
                asm.syscall(SYS_HINT_FD_SEG)
            self._emit_read_root()
            self._emit_join_loop()
            asm.mov(Reg.a0, Reg.s7)  # result counter
            asm.call("print_num")
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)

        with asm.function("cmp_keys"):
            asm.slt(Reg.v0, Reg.a0, Reg.a1)
            asm.ret()

        binary = asm.finish()
        binary.declared_size_bytes = PAPER_ORIGINAL_SIZE
        binary.declared_text_fraction = 0.75
        return binary

    # -- fragments -------------------------------------------------------------

    def _open(self, path_symbol: str, fd_reg: Reg) -> None:
        asm = self.asm
        asm.la(Reg.a0, path_symbol)
        asm.syscall(SYS_OPEN)
        asm.mov(fd_reg, Reg.v0)

    def _lseek_read(self, fd: Reg, offset_reg: Reg, buf: str, nbytes: int) -> None:
        asm = self.asm
        asm.mov(Reg.a0, fd)
        asm.mov(Reg.a1, offset_reg)
        asm.li(Reg.a2, SEEK_SET)
        asm.syscall(SYS_LSEEK)
        asm.mov(Reg.a0, fd)
        asm.la(Reg.a1, buf)
        asm.li(Reg.a2, nbytes)
        asm.syscall(SYS_READ)

    def _emit_open_all(self) -> None:
        # s1 = outer fd, s2 = index fd, s3 = inner fd, s7 = result count.
        self._open("outer_path", Reg.s1)
        self._open("index_path", Reg.s2)
        self._open("inner_path", Reg.s3)
        self.asm.li(Reg.s7, 0)

    def _emit_read_root(self) -> None:
        """Read the index root page once (it stays cached)."""
        asm = self.asm
        asm.li(Reg.t0, 0)
        self._lseek_read(Reg.s2, Reg.t0, "rootbuf", PAGE)

    def _emit_join_loop(self) -> None:
        asm = self.asm
        wl = self.wl

        asm.li(Reg.s0, 0)  # outer page index
        asm.label("pages")
        asm.li(Reg.at, wl.outer_pages)
        asm.bge(Reg.s0, Reg.at, "pages_done")

        # Read the next outer page (sequential scan).
        asm.muli(Reg.t0, Reg.s0, PAGE)
        self._lseek_read(Reg.s1, Reg.t0, "outerbuf", PAGE)

        # Predicate pass: collect matching tuples into the worklist.
        # s4 = slot, s5 = number of probes collected.
        asm.li(Reg.s4, 0)
        asm.li(Reg.s5, 0)
        asm.label("tuples")
        asm.li(Reg.at, TUPLES_PER_PAGE)
        asm.bge(Reg.s4, Reg.at, "tuples_done")
        asm.cwork(wl.tuple_cycles, wl.tuple_loads, wl.tuple_stores)
        asm.la(Reg.t0, "outerbuf")
        asm.muli(Reg.t1, Reg.s4, TUPLE_BYTES)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.t2, Reg.t0, 0)   # key
        asm.load(Reg.t3, Reg.t0, 8)   # match flag (from outer data)
        asm.beq(Reg.t3, Reg.zero, "tuple_next")
        # leaf offset = rootbuf[key / KEYS_PER_LEAF]
        asm.li(Reg.t4, KEYS_PER_LEAF)
        asm.div(Reg.t5, Reg.t2, Reg.t4)
        asm.la(Reg.t6, "rootbuf")
        asm.shli(Reg.t7, Reg.t5, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.load(Reg.t8, Reg.t6, 0)
        # worklist[s5] = (key, leaf offset)
        asm.la(Reg.t6, "probe_keys")
        asm.shli(Reg.t7, Reg.s5, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.store(Reg.t2, Reg.t6, 0)
        asm.la(Reg.t6, "probe_leaf_offs")
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.store(Reg.t8, Reg.t6, 0)
        asm.addi(Reg.s5, Reg.s5, 1)
        asm.label("tuple_next")
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("tuples")
        asm.label("tuples_done")

        if self.manual:
            self._emit_manual_leaf_hints()

        # Probe pass A: read every leaf, record the inner-heap pointer.
        asm.li(Reg.s4, 0)
        asm.label("leaves")
        asm.bge(Reg.s4, Reg.s5, "leaves_done")
        asm.la(Reg.t6, "probe_leaf_offs")
        asm.shli(Reg.t7, Reg.s4, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.load(Reg.s6, Reg.t6, 0)
        self._lseek_read(Reg.s2, Reg.s6, "leafbuf", PAGE)
        # inner offset = leafbuf[key % KEYS_PER_LEAF]  (leaf data!)
        asm.la(Reg.t6, "probe_keys")
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.load(Reg.t2, Reg.t6, 0)
        asm.li(Reg.t4, KEYS_PER_LEAF)
        asm.mod(Reg.t5, Reg.t2, Reg.t4)
        asm.la(Reg.t6, "leafbuf")
        asm.shli(Reg.t8, Reg.t5, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t8)
        asm.load(Reg.t9, Reg.t6, 0)
        asm.la(Reg.t6, "probe_inner_offs")
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.store(Reg.t9, Reg.t6, 0)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("leaves")
        asm.label("leaves_done")

        if self.manual:
            self._emit_manual_inner_hints()

        # Probe pass B: fetch the inner heap pages and join.
        asm.li(Reg.s4, 0)
        asm.label("inners")
        asm.bge(Reg.s4, Reg.s5, "inners_done")
        asm.la(Reg.t6, "probe_inner_offs")
        asm.shli(Reg.t7, Reg.s4, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.load(Reg.s6, Reg.t6, 0)
        self._lseek_read(Reg.s3, Reg.s6, "innerbuf", PAGE)
        asm.cwork(self.wl.probe_cycles, self.wl.probe_loads,
                  self.wl.probe_stores)
        asm.addi(Reg.s7, Reg.s7, 1)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("inners")
        asm.label("inners_done")

        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("pages")
        asm.label("pages_done")

    def _emit_manual_leaf_hints(self) -> None:
        """Disclose this page's leaf probes as a batch."""
        asm = self.asm
        asm.li(Reg.s4, 0)
        asm.label("mh_leaves")
        asm.bge(Reg.s4, Reg.s5, "mh_leaves_done")
        asm.la(Reg.t6, "probe_leaf_offs")
        asm.shli(Reg.t7, Reg.s4, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.load(Reg.a1, Reg.t6, 0)
        asm.mov(Reg.a0, Reg.s2)
        asm.li(Reg.a2, PAGE)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("mh_leaves")
        asm.label("mh_leaves_done")

    def _emit_manual_inner_hints(self) -> None:
        """Disclose this page's inner-heap probes as a batch."""
        asm = self.asm
        asm.li(Reg.s4, 0)
        asm.label("mh_inners")
        asm.bge(Reg.s4, Reg.s5, "mh_inners_done")
        asm.la(Reg.t6, "probe_inner_offs")
        asm.shli(Reg.t7, Reg.s4, 3)
        asm.add(Reg.t6, Reg.t6, Reg.t7)
        asm.load(Reg.a1, Reg.t6, 0)
        asm.mov(Reg.a0, Reg.s3)
        asm.li(Reg.a2, PAGE)
        asm.syscall(SYS_HINT_FD_SEG)
        asm.addi(Reg.s4, Reg.s4, 1)
        asm.jmp("mh_inners")
        asm.label("mh_inners_done")
