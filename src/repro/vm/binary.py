"""SpecVM binary format.

Carries exactly the structural information the paper's SpecHint tool needs
from an Alpha executable: the text section, initialized data with a symbol
table, function boundaries, jump tables (with a "recognized format" bit —
SpecHint only understands a few compiler-dependent formats), and relocation
availability.  Size accounting models Alpha encodings (4-byte instructions)
so the Table 3 statistics are comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AssemblyError
from repro.vm.isa import Insn, Op
from repro.vm.memory import DATA_BASE

#: Alpha instructions are 4 bytes.
INSN_BYTES = 4


class SecretRegion:
    """A data-segment region the program declares secret.

    Mirrors what a real tool would recover from an annotated section
    (``.secret``) or an mlock/MADV_DONTDUMP-style marking: a named
    ``[base, end)`` byte range whose contents must never influence the
    (ino, offset, length) operands of a disclosed I/O hint — the hint
    queue and the resulting prefetch pattern are observable.
    """

    __slots__ = ("name", "base", "end")

    def __init__(self, name: str, base: int, end: int) -> None:
        self.name = name
        self.base = base
        #: One past the last secret byte.
        self.end = end

    @property
    def size(self) -> int:
        return self.end - self.base

    def __repr__(self) -> str:
        return f"SecretRegion({self.name!r}, [{self.base:#x}, {self.end:#x}))"


class Function:
    """A function's extent in the text section."""

    __slots__ = ("name", "entry", "end")

    def __init__(self, name: str, entry: int, end: int) -> None:
        self.name = name
        #: First instruction index.
        self.entry = entry
        #: One past the last instruction index.
        self.end = end

    def contains(self, index: int) -> bool:
        return self.entry <= index < self.end

    def __repr__(self) -> str:
        return f"Function({self.name!r}, [{self.entry}, {self.end}))"


class JumpTable:
    """A jump table (switch statement dispatch target list).

    ``recognized`` models whether SpecHint's tool understands the compiler's
    table format; unrecognized tables force the speculating thread through
    the dynamic handling routine, which can only map *function* addresses
    and therefore usually halts speculation (Section 3.2.1).
    """

    __slots__ = ("table_id", "targets", "recognized")

    def __init__(self, table_id: int, targets: List[int], recognized: bool = True) -> None:
        self.table_id = table_id
        self.targets = targets
        self.recognized = recognized

    def __repr__(self) -> str:
        tag = "recognized" if self.recognized else "unrecognized"
        return f"JumpTable({self.table_id}, {len(self.targets)} targets, {tag})"


class Binary:
    """An executable SpecVM program."""

    def __init__(
        self,
        name: str,
        text: List[Insn],
        data: bytes,
        data_symbols: Dict[str, int],
        functions: List[Function],
        jump_tables: List[JumpTable],
        entry_point: int,
        output_routines: Optional[Set[str]] = None,
        optimized_stdlib: Optional[Set[str]] = None,
        has_relocations: bool = True,
        single_threaded: bool = True,
        statically_linked: bool = True,
        secret_symbols: Optional[Set[str]] = None,
    ) -> None:
        self.name = name
        self.text = text
        self.data = data
        #: Data symbol name -> absolute address in the address space.
        self.data_symbols = data_symbols
        self.functions = functions
        self.jump_tables = jump_tables
        self.entry_point = entry_point
        #: Standard-library output routines SpecHint strips from shadow code
        #: (printf/fprintf/flsbuf in the paper).
        self.output_routines = output_routines or set()
        #: Routines with hand-optimized shadow versions (strncpy/memcpy in
        #: the paper) whose COW checks are loop-optimized.
        self.optimized_stdlib = optimized_stdlib or set()
        self.has_relocations = has_relocations
        self.single_threaded = single_threaded
        self.statically_linked = statically_linked
        #: Data symbols whose contents are declared secret (taint sources).
        self.secret_symbols = secret_symbols or set()

        self._function_by_name = {f.name: f for f in functions}
        self._function_by_entry = {f.entry: f for f in functions}
        self._validate()

    # -- queries -----------------------------------------------------------------

    def function(self, name: str) -> Function:
        found = self._function_by_name.get(name)
        if found is None:
            raise AssemblyError(f"unknown function {name!r} in {self.name}")
        return found

    def function_at_entry(self, index: int) -> Optional[Function]:
        """The function whose entry point is exactly ``index``, if any."""
        return self._function_by_entry.get(index)

    def function_containing(self, index: int) -> Optional[Function]:
        for f in self.functions:
            if f.contains(index):
                return f
        return None

    def jump_table(self, table_id: int) -> JumpTable:
        if table_id < 0 or table_id >= len(self.jump_tables):
            raise AssemblyError(f"unknown jump table {table_id} in {self.name}")
        return self.jump_tables[table_id]

    def function_entries(self) -> Dict[int, Function]:
        """Entry index -> function, for every function in the binary.

        This is exactly the set of targets the SpecHint handling routine
        can map at runtime, which makes it the static analysis's universe
        for unresolved computed transfers.
        """
        return dict(self._function_by_entry)

    def is_function_entry(self, index: int) -> bool:
        return index in self._function_by_entry

    def secret_regions(self) -> Tuple[SecretRegion, ...]:
        """Byte ranges of every secret-marked data symbol, address order.

        A symbol's extent runs to the next symbol's address (or to the end
        of the data section) — alignment padding is charged to the
        preceding symbol, which only ever widens a secret region.
        """
        if not self.secret_symbols:
            return ()
        bounds = sorted(self.data_symbols.values())
        bounds.append(DATA_BASE + len(self.data))
        regions = []
        for name in sorted(self.secret_symbols):
            base = self.data_symbols.get(name)
            if base is None:
                raise AssemblyError(
                    f"{self.name}: secret symbol {name!r} is not a data symbol"
                )
            nxt = min((b for b in bounds if b > base),
                      default=DATA_BASE + len(self.data))
            regions.append(SecretRegion(name, base, max(nxt, base + 1)))
        regions.sort(key=lambda r: r.base)
        return tuple(regions)

    # -- size accounting (Table 3) --------------------------------------------------

    @property
    def text_bytes(self) -> int:
        return len(self.text) * INSN_BYTES

    @property
    def data_bytes(self) -> int:
        return len(self.data)

    @property
    def size_bytes(self) -> int:
        """Executable size: text + data + a fixed header/loader overhead."""
        return self.text_bytes + self.data_bytes + 4096

    # -- validation -------------------------------------------------------------------

    def _validate(self) -> None:
        n = len(self.text)
        if not 0 <= self.entry_point < n:
            raise AssemblyError(
                f"{self.name}: entry point {self.entry_point} outside text of {n}"
            )
        for i, insn in enumerate(self.text):
            if insn.op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP, Op.CALL):
                if not 0 <= insn.c < n:
                    raise AssemblyError(
                        f"{self.name}: instruction {i} targets {insn.c} outside text"
                    )
            elif insn.op in (Op.SWITCH, Op.SPEC_SWITCH):
                table = self.jump_table(insn.c)
                for t in table.targets:
                    if not 0 <= t < n:
                        raise AssemblyError(
                            f"{self.name}: jump table {insn.c} targets {t} outside text"
                        )

    def __repr__(self) -> str:
        return (
            f"Binary({self.name!r}, {len(self.text)} insns, {len(self.data)}B data, "
            f"{len(self.functions)} functions)"
        )
