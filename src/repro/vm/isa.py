"""Instruction set of the SpecVM.

Design notes
------------

* 32 general-purpose 64-bit registers with MIPS/Alpha-flavoured conventions
  (``zero`` is hard-wired to 0, ``sp`` is the stack pointer, ``ra`` the link
  register).
* Text is a list of :class:`Insn`; the program counter is an index into it
  (a Harvard layout — self-modifying code is unsupported, matching the
  paper's stated limitation).
* ``CWORK cycles, nloads, nstores`` models a computation phase: it consumes
  ``cycles`` and *declares* its internal load/store mix.  SpecHint's
  transformation uses the declared mix to charge copy-on-write check cycles
  in shadow code, which is what produces the paper's per-application
  "dilation factor" without simulating every byte access.
* The ``SPEC_*`` and ``COW_*`` opcodes exist only in shadow code — they are
  emitted by the SpecHint transformation, never by the assembler.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional


class Reg(enum.IntEnum):
    """Register names (values are register-file indices)."""

    zero = 0
    at = 1
    v0 = 2
    v1 = 3
    a0 = 4
    a1 = 5
    a2 = 6
    a3 = 7
    a4 = 8
    a5 = 9
    t0 = 10
    t1 = 11
    t2 = 12
    t3 = 13
    t4 = 14
    t5 = 15
    t6 = 16
    t7 = 17
    t8 = 18
    t9 = 19
    s0 = 20
    s1 = 21
    s2 = 22
    s3 = 23
    s4 = 24
    s5 = 25
    s6 = 26
    s7 = 27
    gp = 28
    sp = 29
    fp = 30
    ra = 31


NUM_REGS = 32

#: 64-bit wraparound mask.
MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value >= (1 << 63) else value


class Op(enum.IntEnum):
    """Opcodes.  Order is stable; the machine dispatches on the int value."""

    NOP = 0
    HALT = 1

    # Register / immediate moves
    LI = 2          # a=rd, c=imm
    LA = 3          # a=rd, c=resolved address (data addr or function entry)
    MOV = 4         # a=rd, b=rs

    # Three-register ALU (a=rd, b=rs, c=rt)
    ADD = 5
    SUB = 6
    MUL = 7
    DIV = 8
    MOD = 9
    AND = 10
    OR = 11
    XOR = 12
    SHL = 13
    SHR = 14
    SLT = 15

    # Register-immediate ALU (a=rd, b=rs, c=imm)
    ADDI = 16
    MULI = 17
    ANDI = 18
    ORI = 19
    SHLI = 20
    SHRI = 21
    SLTI = 22

    # Memory (LOAD: a=rd, b=rbase, c=imm; STORE: a=rval, b=rbase, c=imm)
    LOAD = 23
    STORE = 24
    LOADB = 25
    STOREB = 26

    # Control (branches: a=rs, b=rt, c=target index)
    BEQ = 27
    BNE = 28
    BLT = 29
    BGE = 30
    JMP = 31        # c=target
    JR = 32         # a=rs
    CALL = 33       # c=target
    CALLR = 34      # a=rs
    SWITCH = 35     # a=rs (index), c=jump table id

    # System
    SYSCALL = 36    # c=syscall number
    CWORK = 37      # a=cycles, b=nloads, c=nstores

    # --- Shadow-code-only opcodes (emitted by the SpecHint transformation) ---
    COW_LOAD = 38   # like LOAD; d=check cycles
    COW_STORE = 39  # like STORE; d=check cycles
    COW_LOADB = 40
    COW_STOREB = 41
    SCWORK = 42     # a=total (dilated) cycles
    SPEC_READ = 43  # replaces SYSCALL(read) in shadow code
    SPEC_SYSCALL = 44  # other syscalls in shadow code (filtered at runtime)
    SPEC_JR = 45    # dynamic control transfer through the handling routine
    SPEC_CALLR = 46
    SPEC_SWITCH = 47  # switch via a jump table in an unrecognized format


#: Opcodes that may only appear in shadow code.
SHADOW_ONLY_OPS = frozenset(
    {
        Op.COW_LOAD,
        Op.COW_STORE,
        Op.COW_LOADB,
        Op.COW_STOREB,
        Op.SCWORK,
        Op.SPEC_READ,
        Op.SPEC_SYSCALL,
        Op.SPEC_JR,
        Op.SPEC_CALLR,
        Op.SPEC_SWITCH,
    }
)

#: Opcodes whose ``c`` operand is a text index (needing shadow remapping).
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})
TEXT_TARGET_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP, Op.CALL})


# System call numbers -----------------------------------------------------------

SYS_EXIT = 1
SYS_OPEN = 2
SYS_CLOSE = 3
SYS_READ = 4
SYS_WRITE = 5
SYS_LSEEK = 6
SYS_FSTAT = 7
SYS_SBRK = 8
SYS_HINT_SEG = 9
SYS_HINT_FD_SEG = 10
SYS_CANCEL_ALL = 11

SYSCALL_NAMES: Dict[int, str] = {
    SYS_EXIT: "exit",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_LSEEK: "lseek",
    SYS_FSTAT: "fstat",
    SYS_SBRK: "sbrk",
    SYS_HINT_SEG: "hint_seg",
    SYS_HINT_FD_SEG: "hint_fd_seg",
    SYS_CANCEL_ALL: "cancel_all",
}

#: System calls the speculating thread is allowed to issue (Section 3.2.1:
#: hint calls, fstat and sbrk; open/close/lseek are *emulated in user space*
#: by the SpecHint runtime against its speculative fd table, never reaching
#: the kernel).
SPEC_ALLOWED_SYSCALLS = frozenset(
    {SYS_FSTAT, SYS_SBRK, SYS_HINT_SEG, SYS_HINT_FD_SEG, SYS_CANCEL_ALL}
)

#: lseek whence values.
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class Insn:
    """One instruction.

    Operand meaning depends on the opcode (see :class:`Op` comments).
    ``d`` carries transformation-computed extras (COW check cycle cost).
    ``meta`` holds assembler annotations used by the SpecHint tool:
    ``"stack"`` (base register is sp/fp — stack-relative accesses skip COW
    checks because the speculating thread works on a copied stack),
    ``"func"`` (enclosing function name), ``"call_target"`` (symbol name of
    a static call), ``"funcaddr"`` (an LA of a function address, i.e. a
    relocation the tool can see).
    """

    __slots__ = ("op", "a", "b", "c", "d", "meta")

    def __init__(
        self,
        op: Op,
        a: int = 0,
        b: int = 0,
        c: int = 0,
        d: int = 0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.meta = meta

    def clone(self) -> "Insn":
        """Shallow copy (meta dict is shared; transformations replace it)."""
        return Insn(self.op, self.a, self.b, self.c, self.d,
                    dict(self.meta) if self.meta else None)

    def get_meta(self, key: str, default: Any = None) -> Any:
        if self.meta is None:
            return default
        return self.meta.get(key, default)

    def __repr__(self) -> str:
        return f"Insn({self.op.name}, a={self.a}, b={self.b}, c={self.c}, d={self.d})"


# Default cycle costs per opcode class (simple in-order pipeline model).
ALU_COST = 1
MEM_COST = 2
BRANCH_COST = 1
CALL_COST = 2
SWITCH_COST = 3
