"""Process address space.

Layout (one flat bytearray, ranges validated on access)::

    0x0000_0000 .. 0x0000_FFFF   unmapped guard (null dereferences fault)
    0x0001_0000 .. data_end      data segment (globals from the binary)
    data_end    .. heap break    heap (grows via sbrk)
    stack_limit .. 0x0080_0000   stack (grows down from STACK_TOP)
    0x0090_0000 .. spec break    speculative heap (the allocator SpecHint
                                 links in for the speculating thread so
                                 speculation cannot leak process memory)

The speculative heap is private to the speculating thread; writes there are
invisible to the original thread simply because the original thread never
addresses that range.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import IllegalAddress

DATA_BASE = 0x0001_0000
STACK_TOP = 0x0080_0000
DEFAULT_STACK_BYTES = 0x0004_0000  # 256 KB
SPEC_HEAP_BASE = 0x0090_0000
SPEC_HEAP_MAX = 0x00A0_0000
SPACE_SIZE = SPEC_HEAP_MAX

MASK64 = (1 << 64) - 1


class AddressSpace:
    """Memory of one simulated process."""

    def __init__(self, data_image: bytes, stack_bytes: int = DEFAULT_STACK_BYTES) -> None:
        self._mem = bytearray(SPACE_SIZE)
        self._mem[DATA_BASE:DATA_BASE + len(data_image)] = data_image

        self.data_start = DATA_BASE
        #: Heap break; sbrk moves it up.  The heap begins at the page-aligned
        #: end of the data segment.
        self.brk = DATA_BASE + ((len(data_image) + 0xFFF) & ~0xFFF)
        self.heap_max = STACK_TOP - stack_bytes - 0x1_0000
        self.stack_limit = STACK_TOP - stack_bytes
        self.stack_top = STACK_TOP

        #: Speculative-heap break (used by the SpecHint runtime's allocator).
        self.spec_brk = SPEC_HEAP_BASE

        #: Isolation write guard: when armed (speculating thread on CPU),
        #: every mutation of main memory is reported *before* it lands so
        #: the auditor can veto writes that escape COW containment.
        self.write_guard: Optional[Callable[[int, int], None]] = None

    def _guarded(self, addr: int, length: int) -> None:
        guard = self.write_guard
        if guard is not None:
            guard(addr, length)

    # -- validity ---------------------------------------------------------------

    def check_range(self, addr: int, length: int) -> None:
        """Raise :class:`IllegalAddress` unless [addr, addr+length) is mapped."""
        if length < 0:
            raise IllegalAddress(f"negative length {length} at {addr:#x}")
        end = addr + length
        if self.data_start <= addr and end <= self.brk:
            return
        if self.stack_limit <= addr and end <= self.stack_top:
            return
        if SPEC_HEAP_BASE <= addr and end <= self.spec_brk:
            return
        raise IllegalAddress(f"access to unmapped [{addr:#x}, {end:#x})")

    def valid(self, addr: int, length: int) -> bool:
        """Non-raising :meth:`check_range`."""
        try:
            self.check_range(addr, length)
        except IllegalAddress:
            return False
        return True

    def segment_end(self, addr: int) -> Optional[int]:
        """Exclusive end of the mapped segment containing ``addr``.

        Returns None for unmapped addresses.  Used to detect ranges that
        would cross a segment boundary (e.g. a speculative string scan
        running off the end of the heap into the guard gap).
        """
        if self.data_start <= addr < self.brk:
            return self.brk
        if self.stack_limit <= addr < self.stack_top:
            return self.stack_top
        if SPEC_HEAP_BASE <= addr < self.spec_brk:
            return self.spec_brk
        return None

    # -- sbrk --------------------------------------------------------------------

    def sbrk(self, increment: int) -> int:
        """Grow (or query, with 0) the heap; returns the old break."""
        old = self.brk
        new = self.brk + increment
        if increment < 0 or new > self.heap_max:
            raise IllegalAddress(f"sbrk({increment}) beyond heap limit {self.heap_max:#x}")
        self.brk = new
        return old

    def spec_sbrk(self, increment: int) -> int:
        """The speculating thread's private allocator."""
        old = self.spec_brk
        new = self.spec_brk + increment
        if increment < 0 or new > SPEC_HEAP_MAX:
            raise IllegalAddress(f"spec sbrk({increment}) beyond {SPEC_HEAP_MAX:#x}")
        self.spec_brk = new
        return old

    # -- typed access (validated) --------------------------------------------------

    def load_word(self, addr: int) -> int:
        self.check_range(addr, 8)
        return int.from_bytes(self._mem[addr:addr + 8], "little")

    def store_word(self, addr: int, value: int) -> None:
        self._guarded(addr, 8)
        self.check_range(addr, 8)
        self._mem[addr:addr + 8] = (value & MASK64).to_bytes(8, "little")

    def load_byte(self, addr: int) -> int:
        self.check_range(addr, 1)
        return self._mem[addr]

    def store_byte(self, addr: int, value: int) -> None:
        self._guarded(addr, 1)
        self.check_range(addr, 1)
        self._mem[addr] = value & 0xFF

    def read_bytes(self, addr: int, length: int) -> bytes:
        self.check_range(addr, length)
        return bytes(self._mem[addr:addr + length])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        self._guarded(addr, len(payload))
        self.check_range(addr, len(payload))
        self._mem[addr:addr + len(payload)] = payload

    def read_cstring(self, addr: int, max_len: int = 4096) -> bytes:
        """NUL-terminated byte string starting at ``addr``."""
        self.check_range(addr, 1)
        end = min(addr + max_len, SPACE_SIZE)
        raw = self._mem[addr:end]
        nul = raw.find(b"\x00")
        if nul < 0:
            raise IllegalAddress(f"unterminated string at {addr:#x}")
        result = bytes(raw[:nul])
        self.check_range(addr, len(result) + 1)
        return result

    # -- raw access (no validity check; used by the COW machinery which
    #    performs its own checks and must read "stale" bytes freely) -------------

    def raw_read(self, addr: int, length: int) -> bytes:
        return bytes(self._mem[addr:addr + length])

    def raw_write(self, addr: int, payload: bytes) -> None:
        self._guarded(addr, len(payload))
        self._mem[addr:addr + len(payload)] = payload
