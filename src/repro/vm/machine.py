"""The SpecVM interpreter.

Executes one thread at a time against the shared simulation clock.  Two
execution modes:

* **normal mode** — every instruction's cycle cost advances the global
  clock; execution returns to the kernel when the thread blocks/exits or
  when the clock reaches the event engine's horizon (an I/O completion is
  due, and a higher-priority thread may preempt);
* **budget mode** — used for the Section 5 multiprocessor extension: the
  speculating thread runs on a second CPU, consuming a cycle *budget* equal
  to the wall time that has passed, without advancing the global clock.

Speculative execution faults (bad addresses, division by zero on garbage
data) are converted to simulated signals: the fault is counted and the
speculating thread parks until the next restart — the paper's
signal-handler design (Section 3.2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import ArithmeticFault, IsolationViolation, MachineFault
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.trace.tracer import CAT_SCHED, TID_ORIGINAL, TID_SPECULATING
from repro.vm.isa import (
    ALU_COST,
    BRANCH_COST,
    CALL_COST,
    MASK64,
    MEM_COST,
    SWITCH_COST,
    Insn,
    Op,
    to_signed,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread


class SpeculationFault(Exception):
    """Raised internally when the speculating thread misbehaves (caught by
    the machine and converted to a simulated signal, never propagated)."""


#: Sentinel cost returned by handlers that stopped the thread.
_STOPPED = -1

#: Dynamic-handling-routine overhead for SPEC_JR / SPEC_CALLR / SPEC_SWITCH.
_HANDLER_COST = 24


class Machine:
    """Interprets SpecVM instructions for the kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.clock: SimClock = kernel.clock
        self.engine: EventEngine = kernel.engine
        self._dispatch: List[Callable[["Thread", Insn], int]] = self._build_dispatch()
        #: Total instructions executed (all threads).
        self.instructions = 0
        #: Cycle charges for page events (paper: speculation's memory
        #: side effects — reclaims and faults — cost real time).
        cpu = kernel.config.cpu
        self._page_event_cost = (0, cpu.page_reclaim_cycles, cpu.page_fault_cycles)

    # ------------------------------------------------------------------ run

    def execute(
        self,
        thread: "Thread",
        budget: Optional[int] = None,
        until: Optional[int] = None,
    ) -> str:
        """Run ``thread`` until it stops; returns the stop reason.

        Reasons: ``"event"`` (normal mode: the event horizon or the
        ``until`` time slice boundary arrived), ``"budget"`` (budget mode:
        budget exhausted), ``"blocked"``, ``"exited"``, ``"spec_idle"``
        (speculation parked).
        """
        spec = thread.process.spec
        guard_armed = False
        if thread.is_spec and spec is not None and spec.auditor is not None:
            # Write containment: while the speculating thread holds the CPU,
            # every main-memory mutation is checked by the auditor.
            spec.auditor.arm(thread.process.mem)
            guard_armed = True
        tracer = self.kernel.tracer
        slice_start = self.clock.now if tracer.enabled else 0
        try:
            return self._run_inner(thread, budget, until)
        except SpeculationFault:
            self._spec_signal(thread)
            return "spec_idle"
        except IsolationViolation as exc:
            if thread.is_spec and spec is not None:
                spec.quarantine(thread, exc)
                return "spec_idle"
            raise
        finally:
            if guard_armed:
                spec.auditor.disarm(thread.process.mem)
            if tracer.enabled:
                # One span per scheduling slice that advanced the clock.
                # Budget-mode (second-CPU) speculation leaves the global
                # clock alone, so it contributes no slice spans; its CPU
                # time is still accounted via thread.cpu_cycles.
                duration = self.clock.now - slice_start
                if duration > 0:
                    tracer.complete(
                        CAT_SCHED, "exec", slice_start, duration,
                        tid=TID_SPECULATING if thread.is_spec else TID_ORIGINAL,
                        pid=thread.process.pid,
                    )

    def _run_inner(
        self, thread: "Thread", budget: Optional[int], until: Optional[int] = None
    ) -> str:
        clock = self.clock
        engine = self.engine
        process = thread.process
        text = process.binary.text
        dispatch = self._dispatch
        is_spec = thread.is_spec
        spec = process.spec
        poll_interval = 0
        if is_spec and spec is not None:
            poll_interval = spec.params.restart_poll_interval

        # Budget tracking lives on the thread so the except path can see it.
        thread.pending_budget = budget  # type: ignore[attr-defined]

        while True:
            # Charge any cost deferred from a wakeup (e.g. read-copy cycles).
            if thread.pending_cost:
                cost = thread.pending_cost
                thread.pending_cost = 0
                if not self._charge(thread, cost, budget):
                    return "event" if budget is None else "budget"
                if budget is not None:
                    budget -= cost
                    thread.pending_budget = budget  # type: ignore[attr-defined]

            # Drain interruptible computation (CWORK/SCWORK remainder).
            if thread.cwork_remaining:
                stopped = self._drain_cwork(thread, budget, until)
                if stopped is not None:
                    return stopped
                if budget is not None:
                    budget = thread.pending_budget  # type: ignore[attr-defined]

            # Preemption points.
            if budget is None:
                horizon = engine.horizon
                if until is not None and until < horizon:
                    horizon = until
                if clock.now >= horizon:
                    return "event"
            elif budget <= 0:
                return "budget"

            # Restart-flag poll (speculating thread only).
            if poll_interval:
                thread.poll_counter += 1
                if thread.poll_counter >= poll_interval:
                    thread.poll_counter = 0
                    if spec is not None and spec.restart_flag:
                        cost = spec.perform_restart(thread)
                        if cost == _STOPPED:
                            # Watchdog disabled speculation mid-restart.
                            return thread.stop_reason
                        if not self._charge(thread, cost, budget):
                            return "event" if budget is None else "budget"
                        if budget is not None:
                            budget -= cost
                            thread.pending_budget = budget  # type: ignore[attr-defined]
                        continue

            insn = text[thread.pc]
            self.instructions += 1
            cost = dispatch[insn.op](thread, insn)
            if cost == _STOPPED:
                return thread.stop_reason
            if cost:
                thread.cpu_cycles += cost
                if budget is None:
                    clock.advance(cost)
                else:
                    budget -= cost
                    thread.spec_clock += cost
                    thread.pending_budget = budget  # type: ignore[attr-defined]

    def _charge(self, thread: "Thread", cost: int, budget: Optional[int]) -> bool:
        """Charge cycles outside the main dispatch; True if fully charged."""
        thread.cpu_cycles += cost
        if budget is None:
            self.clock.advance(cost)
            return True
        thread.spec_clock += cost
        return True

    def _drain_cwork(
        self, thread: "Thread", budget: Optional[int], until: Optional[int] = None
    ) -> Optional[str]:
        """Consume pending computation, interruptible at the event horizon
        (normal mode) or budget boundary.  Returns a stop reason or None."""
        remaining = thread.cwork_remaining
        if budget is None:
            horizon = self.engine.horizon
            if until is not None and until < horizon:
                horizon = until
            room = horizon - self.clock.now
            if room <= 0:
                return "event"
            chunk = remaining if remaining <= room else room
            self.clock.advance(chunk)
            thread.cpu_cycles += chunk
            thread.cwork_remaining = remaining - chunk
            if thread.cwork_remaining:
                return "event"
            return None
        if budget <= 0:
            return "budget"
        chunk = remaining if remaining <= budget else budget
        thread.spec_clock += chunk
        thread.cpu_cycles += chunk
        thread.cwork_remaining = remaining - chunk
        thread.pending_budget = budget - chunk  # type: ignore[attr-defined]
        if thread.cwork_remaining:
            return "budget"
        return None

    def _spec_signal(self, thread: "Thread") -> None:
        """Convert a speculative fault to a signal + parked speculation."""
        spec = thread.process.spec
        if spec is not None:
            spec.note_signal(thread)
        thread.stop_reason = "spec_idle"

    # ------------------------------------------------------------- dispatch

    def _build_dispatch(self) -> List[Callable[["Thread", Insn], int]]:
        table: List[Callable[["Thread", Insn], int]] = [self._op_invalid] * 64
        table[Op.NOP] = self._op_nop
        table[Op.HALT] = self._op_halt
        table[Op.LI] = self._op_li
        table[Op.LA] = self._op_li  # identical at runtime
        table[Op.MOV] = self._op_mov
        table[Op.ADD] = self._op_add
        table[Op.SUB] = self._op_sub
        table[Op.MUL] = self._op_mul
        table[Op.DIV] = self._op_div
        table[Op.MOD] = self._op_mod
        table[Op.AND] = self._op_and
        table[Op.OR] = self._op_or
        table[Op.XOR] = self._op_xor
        table[Op.SHL] = self._op_shl
        table[Op.SHR] = self._op_shr
        table[Op.SLT] = self._op_slt
        table[Op.ADDI] = self._op_addi
        table[Op.MULI] = self._op_muli
        table[Op.ANDI] = self._op_andi
        table[Op.ORI] = self._op_ori
        table[Op.SHLI] = self._op_shli
        table[Op.SHRI] = self._op_shri
        table[Op.SLTI] = self._op_slti
        table[Op.LOAD] = self._op_load
        table[Op.STORE] = self._op_store
        table[Op.LOADB] = self._op_loadb
        table[Op.STOREB] = self._op_storeb
        table[Op.BEQ] = self._op_beq
        table[Op.BNE] = self._op_bne
        table[Op.BLT] = self._op_blt
        table[Op.BGE] = self._op_bge
        table[Op.JMP] = self._op_jmp
        table[Op.JR] = self._op_jr
        table[Op.CALL] = self._op_call
        table[Op.CALLR] = self._op_callr
        table[Op.SWITCH] = self._op_switch
        table[Op.SYSCALL] = self._op_syscall
        table[Op.CWORK] = self._op_cwork
        table[Op.COW_LOAD] = self._op_cow_load
        table[Op.COW_STORE] = self._op_cow_store
        table[Op.COW_LOADB] = self._op_cow_loadb
        table[Op.COW_STOREB] = self._op_cow_storeb
        table[Op.SCWORK] = self._op_scwork
        table[Op.SPEC_READ] = self._op_spec_read
        table[Op.SPEC_SYSCALL] = self._op_spec_syscall
        table[Op.SPEC_JR] = self._op_spec_jr
        table[Op.SPEC_CALLR] = self._op_spec_callr
        table[Op.SPEC_SWITCH] = self._op_spec_switch
        return table

    # -- trivial ----------------------------------------------------------------

    def _op_invalid(self, thread: "Thread", insn: Insn) -> int:
        raise MachineFault(f"invalid opcode {insn.op} at pc={thread.pc}")

    def _op_nop(self, thread: "Thread", insn: Insn) -> int:
        thread.pc += 1
        return ALU_COST

    def _op_halt(self, thread: "Thread", insn: Insn) -> int:
        return self.kernel.handle_exit(thread, 0)

    def _op_li(self, thread: "Thread", insn: Insn) -> int:
        thread.regs[insn.a] = insn.c & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_mov(self, thread: "Thread", insn: Insn) -> int:
        thread.regs[insn.a] = thread.regs[insn.b]
        thread.pc += 1
        return ALU_COST

    # -- ALU ---------------------------------------------------------------------

    def _op_add(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] + r[insn.c]) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_sub(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] - r[insn.c]) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_mul(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] * r[insn.c]) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_div(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        divisor = r[insn.c]
        if divisor == 0:
            if thread.is_spec:
                raise SpeculationFault("speculative division by zero")
            raise ArithmeticFault(f"division by zero at pc={thread.pc}")
        r[insn.a] = (to_signed(r[insn.b]) // to_signed(divisor)) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_mod(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        divisor = r[insn.c]
        if divisor == 0:
            if thread.is_spec:
                raise SpeculationFault("speculative modulus by zero")
            raise ArithmeticFault(f"modulus by zero at pc={thread.pc}")
        r[insn.a] = (to_signed(r[insn.b]) % to_signed(divisor)) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_and(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] & r[insn.c]
        thread.pc += 1
        return ALU_COST

    def _op_or(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] | r[insn.c]
        thread.pc += 1
        return ALU_COST

    def _op_xor(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] ^ r[insn.c]
        thread.pc += 1
        return ALU_COST

    def _op_shl(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] << (r[insn.c] & 63)) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_shr(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] >> (r[insn.c] & 63)
        thread.pc += 1
        return ALU_COST

    def _op_slt(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = 1 if to_signed(r[insn.b]) < to_signed(r[insn.c]) else 0
        thread.pc += 1
        return ALU_COST

    def _op_addi(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] + insn.c) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_muli(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] * insn.c) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_andi(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] & (insn.c & MASK64)
        thread.pc += 1
        return ALU_COST

    def _op_ori(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] | (insn.c & MASK64)
        thread.pc += 1
        return ALU_COST

    def _op_shli(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = (r[insn.b] << (insn.c & 63)) & MASK64
        thread.pc += 1
        return ALU_COST

    def _op_shri(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = r[insn.b] >> (insn.c & 63)
        thread.pc += 1
        return ALU_COST

    def _op_slti(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        r[insn.a] = 1 if to_signed(r[insn.b]) < insn.c else 0
        thread.pc += 1
        return ALU_COST

    # -- memory ---------------------------------------------------------------------

    def _op_load(self, thread: "Thread", insn: Insn) -> int:
        proc = thread.process
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        try:
            thread.regs[insn.a] = proc.mem.load_word(addr)
        except MachineFault as exc:
            self._spec_mem_fault(thread, exc)
        thread.pc += 1
        return MEM_COST + self._page_event_cost[proc.vmstat.touch_addr(addr)]

    def _op_store(self, thread: "Thread", insn: Insn) -> int:
        proc = thread.process
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        try:
            proc.mem.store_word(addr, thread.regs[insn.a])
        except MachineFault as exc:
            self._spec_mem_fault(thread, exc)
        thread.pc += 1
        return MEM_COST + self._page_event_cost[proc.vmstat.touch_addr(addr)]

    def _op_loadb(self, thread: "Thread", insn: Insn) -> int:
        proc = thread.process
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        try:
            thread.regs[insn.a] = proc.mem.load_byte(addr)
        except MachineFault as exc:
            self._spec_mem_fault(thread, exc)
        thread.pc += 1
        return MEM_COST + self._page_event_cost[proc.vmstat.touch_addr(addr)]

    def _op_storeb(self, thread: "Thread", insn: Insn) -> int:
        proc = thread.process
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        try:
            proc.mem.store_byte(addr, thread.regs[insn.a])
        except MachineFault as exc:
            self._spec_mem_fault(thread, exc)
        thread.pc += 1
        return MEM_COST + self._page_event_cost[proc.vmstat.touch_addr(addr)]

    @staticmethod
    def _spec_mem_fault(thread: "Thread", exc: MachineFault) -> None:
        """A plain load/store faulted.  On the speculating thread (possible
        once static analysis elides COW wrappers) the fault becomes a
        speculation signal; normal execution re-raises the machine fault."""
        if thread.is_spec:
            raise SpeculationFault(f"speculative memory fault: {exc}") from exc
        raise exc

    # -- control --------------------------------------------------------------------

    def _op_beq(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        thread.pc = insn.c if r[insn.a] == r[insn.b] else thread.pc + 1
        return BRANCH_COST

    def _op_bne(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        thread.pc = insn.c if r[insn.a] != r[insn.b] else thread.pc + 1
        return BRANCH_COST

    def _op_blt(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        taken = to_signed(r[insn.a]) < to_signed(r[insn.b])
        thread.pc = insn.c if taken else thread.pc + 1
        return BRANCH_COST

    def _op_bge(self, thread: "Thread", insn: Insn) -> int:
        r = thread.regs
        taken = to_signed(r[insn.a]) >= to_signed(r[insn.b])
        thread.pc = insn.c if taken else thread.pc + 1
        return BRANCH_COST

    def _op_jmp(self, thread: "Thread", insn: Insn) -> int:
        thread.pc = insn.c
        return BRANCH_COST

    def _op_jr(self, thread: "Thread", insn: Insn) -> int:
        target = thread.regs[insn.a]
        self._check_text_target(thread, target)
        thread.pc = target
        return BRANCH_COST

    def _op_call(self, thread: "Thread", insn: Insn) -> int:
        thread.regs[31] = thread.pc + 1  # ra
        thread.pc = insn.c
        return CALL_COST

    def _op_callr(self, thread: "Thread", insn: Insn) -> int:
        target = thread.regs[insn.a]
        self._check_text_target(thread, target)
        thread.regs[31] = thread.pc + 1
        thread.pc = target
        return CALL_COST

    def _op_switch(self, thread: "Thread", insn: Insn) -> int:
        table = thread.process.binary.jump_table(insn.c)
        index = thread.regs[insn.a]
        if index >= len(table.targets):
            if thread.is_spec:
                raise SpeculationFault(
                    f"speculative switch index {index} out of range"
                )
            raise MachineFault(
                f"switch index {index} out of range at pc={thread.pc}"
            )
        thread.pc = table.targets[index]
        return SWITCH_COST

    def _check_text_target(self, thread: "Thread", target: int) -> None:
        if not 0 <= target < len(thread.process.binary.text):
            if thread.is_spec:
                raise SpeculationFault(f"speculative jump to {target}")
            raise MachineFault(f"jump to {target} outside text at pc={thread.pc}")

    # -- system --------------------------------------------------------------------------

    def _op_syscall(self, thread: "Thread", insn: Insn) -> int:
        return self.kernel.syscall(thread, insn.c)

    def _op_cwork(self, thread: "Thread", insn: Insn) -> int:
        thread.cwork_remaining += insn.a
        thread.pc += 1
        return 0

    def _op_scwork(self, thread: "Thread", insn: Insn) -> int:
        thread.cwork_remaining += insn.a
        thread.pc += 1
        return 0

    # -- shadow-code memory (software-enforced copy-on-write) -------------------------------

    def _op_cow_load(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        thread.regs[insn.a] = spec.cow.load_word(addr)
        thread.pc += 1
        return MEM_COST + insn.d

    def _op_cow_store(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        extra = spec.cow.store_word(addr, thread.regs[insn.a])
        thread.pc += 1
        return MEM_COST + insn.d + extra

    def _op_cow_loadb(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        thread.regs[insn.a] = spec.cow.load_byte(addr)
        thread.pc += 1
        return MEM_COST + insn.d

    def _op_cow_storeb(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        addr = (thread.regs[insn.b] + insn.c) & MASK64
        extra = spec.cow.store_byte(addr, thread.regs[insn.a])
        thread.pc += 1
        return MEM_COST + insn.d + extra

    # -- shadow-code control & system --------------------------------------------------------

    def _op_spec_read(self, thread: "Thread", insn: Insn) -> int:
        return thread.process.spec.spec_read(thread)

    def _op_spec_syscall(self, thread: "Thread", insn: Insn) -> int:
        return thread.process.spec.spec_syscall(thread, insn.c)

    def _op_spec_jr(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        target = spec.resolve_control_target(thread.regs[insn.a])
        if target is None:
            return spec.park(thread, "left_shadow")
        thread.pc = target
        return BRANCH_COST + _HANDLER_COST

    def _op_spec_callr(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        target = spec.resolve_control_target(thread.regs[insn.a])
        if target is None:
            return spec.park(thread, "left_shadow")
        thread.regs[31] = thread.pc + 1
        thread.pc = target
        return CALL_COST + _HANDLER_COST

    def _op_spec_switch(self, thread: "Thread", insn: Insn) -> int:
        spec = thread.process.spec
        table = thread.process.binary.jump_table(insn.c)
        index = thread.regs[insn.a]
        if index >= len(table.targets):
            raise SpeculationFault(f"speculative switch index {index}")
        target = spec.resolve_control_target(table.targets[index])
        if target is None:
            return spec.park(thread, "unrecognized_jump_table")
        thread.pc = target
        return SWITCH_COST + _HANDLER_COST
