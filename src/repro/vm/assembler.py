"""Two-pass assembler / program builder for SpecVM binaries.

Programs are built through method calls rather than parsed from source —
one method per opcode, plus data directives, labels, functions, jump tables
and a few pseudo-instructions (``push``/``pop``/``ret``).  Label and symbol
references are recorded as strings and resolved in :meth:`Assembler.finish`.

The assembler also records the annotations the SpecHint tool relies on
(mirroring what a real tool recovers from relocation and symbol
information): enclosing function of each instruction, static call targets,
stack-relative memory accesses, and function-address constants.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.errors import AssemblyError
from repro.vm.binary import Binary, Function, JumpTable
from repro.vm.isa import Insn, Op, Reg
from repro.vm.memory import DATA_BASE

RegLike = Union[Reg, str, int]


def _reg(r: RegLike) -> int:
    """Normalize a register reference (Reg, name string, or index)."""
    if isinstance(r, Reg):
        return int(r)
    if isinstance(r, str):
        try:
            return int(Reg[r])
        except KeyError:
            raise AssemblyError(f"unknown register {r!r}") from None
    if isinstance(r, int) and 0 <= r < 32:
        return r
    raise AssemblyError(f"bad register {r!r}")


def _wreg(r: RegLike) -> int:
    """Normalize a *destination* register; ``zero`` is not writable."""
    index = _reg(r)
    if index == int(Reg.zero):
        raise AssemblyError("the zero register is read-only")
    return index


class Assembler:
    """Builds one :class:`~repro.vm.binary.Binary`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._text: List[Insn] = []
        self._data = bytearray()
        self._data_symbols: Dict[str, int] = {}
        self._labels: Dict[str, int] = {}
        self._functions: List[Function] = []
        self._open_function: Optional[str] = None
        self._open_function_start = 0
        self._jump_tables: List[JumpTable] = []
        self._jump_table_labels: List[List[str]] = []
        self._jump_table_recognized: List[bool] = []
        self._entry_label: Optional[str] = None
        self._output_routines: Set[str] = set()
        self._optimized_stdlib: Set[str] = set()
        self._secret_symbols: Set[str] = set()

    # -- data section ------------------------------------------------------------

    def _align(self, alignment: int) -> None:
        while len(self._data) % alignment:
            self._data.append(0)

    def data_word(self, name: str, value: int = 0, secret: bool = False) -> int:
        """An 8-byte global; returns its absolute address."""
        self._align(8)
        return self.data_bytes(
            name, (value & ((1 << 64) - 1)).to_bytes(8, "little"), secret=secret
        )

    def data_words(self, name: str, values: List[int], secret: bool = False) -> int:
        """An array of 8-byte words."""
        self._align(8)
        payload = b"".join((v & ((1 << 64) - 1)).to_bytes(8, "little") for v in values)
        return self.data_bytes(name, payload, secret=secret)

    def data_bytes(self, name: str, payload: bytes, secret: bool = False) -> int:
        """Raw initialized bytes; returns the absolute address.

        ``secret=True`` marks the symbol's bytes as secret: the security
        lint (``repro analyze --security``) proves no hint operand ever
        derives from them.
        """
        if name in self._data_symbols:
            raise AssemblyError(f"duplicate data symbol {name!r}")
        addr = DATA_BASE + len(self._data)
        self._data_symbols[name] = addr
        self._data.extend(payload)
        if secret:
            self._secret_symbols.add(name)
        return addr

    def data_asciiz(self, name: str, text: str, secret: bool = False) -> int:
        """A NUL-terminated string."""
        return self.data_bytes(name, text.encode("ascii") + b"\x00", secret=secret)

    def data_space(self, name: str, nbytes: int, secret: bool = False) -> int:
        """Zero-initialized space (buffers)."""
        self._align(8)
        return self.data_bytes(name, b"\x00" * nbytes, secret=secret)

    def data_addr(self, name: str) -> int:
        """Address of an existing data symbol."""
        addr = self._data_symbols.get(name)
        if addr is None:
            raise AssemblyError(f"unknown data symbol {name!r}")
        return addr

    # -- labels / functions ---------------------------------------------------------

    @property
    def here(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._text)

    def label(self, name: str) -> None:
        """Define a code label at the current position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = self.here

    @contextlib.contextmanager
    def function(
        self,
        name: str,
        output_routine: bool = False,
        optimized_stdlib: bool = False,
    ) -> Iterator[None]:
        """Delimit a function; its name becomes a code label too."""
        if self._open_function is not None:
            raise AssemblyError(
                f"function {name!r} opened inside {self._open_function!r}"
            )
        self.label(name)
        self._open_function = name
        self._open_function_start = self.here
        if output_routine:
            self._output_routines.add(name)
        if optimized_stdlib:
            self._optimized_stdlib.add(name)
        try:
            yield
        finally:
            self._functions.append(Function(name, self._open_function_start, self.here))
            self._open_function = None

    def entry(self, label: str) -> None:
        """Declare the program entry point."""
        self._entry_label = label

    def jump_table(self, target_labels: List[str], recognized: bool = True) -> int:
        """Create a jump table; returns its id for :meth:`switch`."""
        table_id = len(self._jump_table_labels)
        self._jump_table_labels.append(list(target_labels))
        self._jump_table_recognized.append(recognized)
        return table_id

    # -- emission core -----------------------------------------------------------------

    def _emit(self, op: Op, a: int = 0, b: int = 0, c: object = 0, **meta: object) -> Insn:
        full_meta: Dict[str, object] = dict(meta) if meta else {}
        if self._open_function is not None:
            full_meta["func"] = self._open_function
        insn = Insn(op, a, b, 0, 0, full_meta or None)
        # Unresolved targets are parked in meta and fixed up in finish().
        if isinstance(c, str):
            if insn.meta is None:
                insn.meta = {}
            insn.meta["fixup"] = c
        else:
            insn.c = int(c)  # type: ignore[arg-type]
        self._text.append(insn)
        return insn

    # -- instructions ----------------------------------------------------------------------

    def nop(self) -> None:
        self._emit(Op.NOP)

    def halt(self) -> None:
        self._emit(Op.HALT)

    def li(self, rd: RegLike, imm: int) -> None:
        self._emit(Op.LI, _wreg(rd), 0, imm)

    def la(self, rd: RegLike, symbol: str) -> None:
        """Load the address of a data symbol, or of a function (a
        function-address constant, visible to SpecHint via relocations)."""
        if symbol in self._data_symbols:
            self._emit(Op.LA, _wreg(rd), 0, self._data_symbols[symbol])
        else:
            # Assume a function/code label; resolved in finish().
            self._emit(Op.LA, _wreg(rd), 0, symbol, funcaddr=symbol)

    def mov(self, rd: RegLike, rs: RegLike) -> None:
        self._emit(Op.MOV, _wreg(rd), _reg(rs))

    # three-register ALU
    def add(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.ADD, _wreg(rd), _reg(rs), _reg(rt))

    def sub(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.SUB, _wreg(rd), _reg(rs), _reg(rt))

    def mul(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.MUL, _wreg(rd), _reg(rs), _reg(rt))

    def div(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.DIV, _wreg(rd), _reg(rs), _reg(rt))

    def mod(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.MOD, _wreg(rd), _reg(rs), _reg(rt))

    def and_(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.AND, _wreg(rd), _reg(rs), _reg(rt))

    def or_(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.OR, _wreg(rd), _reg(rs), _reg(rt))

    def xor(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.XOR, _wreg(rd), _reg(rs), _reg(rt))

    def shl(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.SHL, _wreg(rd), _reg(rs), _reg(rt))

    def shr(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.SHR, _wreg(rd), _reg(rs), _reg(rt))

    def slt(self, rd: RegLike, rs: RegLike, rt: RegLike) -> None:
        self._emit(Op.SLT, _wreg(rd), _reg(rs), _reg(rt))

    # register-immediate ALU
    def addi(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.ADDI, _wreg(rd), _reg(rs), imm)

    def muli(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.MULI, _wreg(rd), _reg(rs), imm)

    def andi(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.ANDI, _wreg(rd), _reg(rs), imm)

    def ori(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.ORI, _wreg(rd), _reg(rs), imm)

    def shli(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.SHLI, _wreg(rd), _reg(rs), imm)

    def shri(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.SHRI, _wreg(rd), _reg(rs), imm)

    def slti(self, rd: RegLike, rs: RegLike, imm: int) -> None:
        self._emit(Op.SLTI, _wreg(rd), _reg(rs), imm)

    # memory
    def _mem_meta(self, base: int) -> Dict[str, object]:
        return {"stack": True} if base in (int(Reg.sp), int(Reg.fp)) else {}

    def load(self, rd: RegLike, base: RegLike, imm: int = 0) -> None:
        b = _reg(base)
        self._emit(Op.LOAD, _wreg(rd), b, imm, **self._mem_meta(b))

    def store(self, rval: RegLike, base: RegLike, imm: int = 0) -> None:
        b = _reg(base)
        self._emit(Op.STORE, _reg(rval), b, imm, **self._mem_meta(b))

    def loadb(self, rd: RegLike, base: RegLike, imm: int = 0) -> None:
        b = _reg(base)
        self._emit(Op.LOADB, _wreg(rd), b, imm, **self._mem_meta(b))

    def storeb(self, rval: RegLike, base: RegLike, imm: int = 0) -> None:
        b = _reg(base)
        self._emit(Op.STOREB, _reg(rval), b, imm, **self._mem_meta(b))

    # control
    def beq(self, rs: RegLike, rt: RegLike, target: str) -> None:
        self._emit(Op.BEQ, _reg(rs), _reg(rt), target)

    def bne(self, rs: RegLike, rt: RegLike, target: str) -> None:
        self._emit(Op.BNE, _reg(rs), _reg(rt), target)

    def blt(self, rs: RegLike, rt: RegLike, target: str) -> None:
        self._emit(Op.BLT, _reg(rs), _reg(rt), target)

    def bge(self, rs: RegLike, rt: RegLike, target: str) -> None:
        self._emit(Op.BGE, _reg(rs), _reg(rt), target)

    def jmp(self, target: str) -> None:
        self._emit(Op.JMP, 0, 0, target)

    def jr(self, rs: RegLike) -> None:
        self._emit(Op.JR, _reg(rs))

    def call(self, target: str) -> None:
        self._emit(Op.CALL, 0, 0, target, call_target=target)

    def callr(self, rs: RegLike) -> None:
        self._emit(Op.CALLR, _reg(rs))

    def ret(self) -> None:
        """Pseudo: return through the link register."""
        self._emit(Op.JR, int(Reg.ra))

    def switch(self, rs: RegLike, table_id: int) -> None:
        self._emit(Op.SWITCH, _reg(rs), 0, table_id)

    # system / work
    def syscall(self, num: int) -> None:
        self._emit(Op.SYSCALL, 0, 0, num)

    def cwork(self, cycles: int, nloads: int = 0, nstores: int = 0) -> None:
        """A computation phase: consume ``cycles``, declaring its internal
        load/store mix for COW-dilation accounting (see isa.py)."""
        if cycles < 0 or nloads < 0 or nstores < 0:
            raise AssemblyError("cwork operands must be non-negative")
        self._emit(Op.CWORK, cycles, nloads, nstores)

    # stack pseudo-ops
    def push(self, rs: RegLike) -> None:
        self.addi(Reg.sp, Reg.sp, -8)
        self.store(rs, Reg.sp, 0)

    def pop(self, rd: RegLike) -> None:
        self.load(rd, Reg.sp, 0)
        self.addi(Reg.sp, Reg.sp, 8)

    # -- finish ----------------------------------------------------------------------------

    def finish(self) -> Binary:
        """Resolve fixups and produce the binary."""
        if self._open_function is not None:
            raise AssemblyError(f"function {self._open_function!r} never closed")
        if self._entry_label is None:
            raise AssemblyError(f"{self.name}: no entry point declared")

        for i, insn in enumerate(self._text):
            fixup = insn.get_meta("fixup")
            if fixup is not None:
                target = self._labels.get(fixup)
                if target is None:
                    raise AssemblyError(
                        f"{self.name}: instruction {i} references unknown label {fixup!r}"
                    )
                insn.c = target
                del insn.meta["fixup"]  # type: ignore[union-attr]

        jump_tables = []
        for table_id, labels in enumerate(self._jump_table_labels):
            targets = []
            for label in labels:
                target = self._labels.get(label)
                if target is None:
                    raise AssemblyError(
                        f"{self.name}: jump table {table_id} references {label!r}"
                    )
                targets.append(target)
            jump_tables.append(
                JumpTable(table_id, targets, self._jump_table_recognized[table_id])
            )

        entry = self._labels.get(self._entry_label)
        if entry is None:
            raise AssemblyError(f"{self.name}: unknown entry label {self._entry_label!r}")

        return Binary(
            name=self.name,
            text=self._text,
            data=bytes(self._data),
            data_symbols=dict(self._data_symbols),
            functions=self._functions,
            jump_tables=jump_tables,
            entry_point=entry,
            output_routines=self._output_routines,
            optimized_stdlib=self._optimized_stdlib,
            secret_symbols=self._secret_symbols,
        )
