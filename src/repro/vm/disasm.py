"""Disassembler for SpecVM binaries.

Produces readable listings of original and transformed binaries — the
practical way to inspect what the SpecHint tool did to a program (which
loads were wrapped, which calls were stripped, where the shadow text
begins).  Used by the CLI's ``disasm`` command and by tests.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.vm.binary import Binary
from repro.vm.isa import Insn, Op, Reg, SYSCALL_NAMES

#: Opcodes whose ``c`` operand is a text target.
_TEXT_TARGET = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP, Op.CALL}


def _reg(index: int) -> str:
    return Reg(index).name


def format_insn(insn: Insn, binary: Optional[Binary] = None) -> str:
    """One instruction as assembly-like text."""
    op = insn.op
    if op in (Op.NOP, Op.HALT):
        return op.name.lower()
    if op in (Op.LI, Op.LA):
        return f"{op.name.lower():8s}{_reg(insn.a)}, {insn.c:#x}" \
            if op is Op.LA else f"li      {_reg(insn.a)}, {insn.c}"
    if op is Op.MOV:
        return f"mov     {_reg(insn.a)}, {_reg(insn.b)}"
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
              Op.XOR, Op.SHL, Op.SHR, Op.SLT):
        return (f"{op.name.lower():8s}{_reg(insn.a)}, {_reg(insn.b)}, "
                f"{_reg(insn.c)}")
    if op in (Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.SHLI, Op.SHRI, Op.SLTI):
        return f"{op.name.lower():8s}{_reg(insn.a)}, {_reg(insn.b)}, {insn.c}"
    if op in (Op.LOAD, Op.LOADB, Op.COW_LOAD, Op.COW_LOADB):
        suffix = f"  ; +{insn.d}c cow" if insn.d else ""
        return (f"{op.name.lower():10s}{_reg(insn.a)}, "
                f"{insn.c}({_reg(insn.b)}){suffix}")
    if op in (Op.STORE, Op.STOREB, Op.COW_STORE, Op.COW_STOREB):
        suffix = f"  ; +{insn.d}c cow" if insn.d else ""
        return (f"{op.name.lower():10s}{_reg(insn.a)}, "
                f"{insn.c}({_reg(insn.b)}){suffix}")
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        return (f"{op.name.lower():8s}{_reg(insn.a)}, {_reg(insn.b)}, "
                f"{_label(insn.c, binary)}")
    if op is Op.JMP:
        return f"jmp     {_label(insn.c, binary)}"
    if op is Op.CALL:
        target = insn.get_meta("call_target")
        return f"call    {target or _label(insn.c, binary)}"
    if op in (Op.JR, Op.SPEC_JR):
        return f"{op.name.lower():8s}{_reg(insn.a)}"
    if op in (Op.CALLR, Op.SPEC_CALLR):
        return f"{op.name.lower():8s}{_reg(insn.a)}"
    if op in (Op.SWITCH, Op.SPEC_SWITCH):
        text = f"{op.name.lower():8s}{_reg(insn.a)}, table#{insn.c}"
        if binary is not None:
            table = binary.jump_table(insn.c)
            targets = ", ".join(
                _label(t, binary) for t in table.targets[:6]
            )
            if len(table.targets) > 6:
                targets += ", ..."
            tag = "" if table.recognized else "unrecognized; "
            text += f"  ; {tag}[{targets}]"
        return text
    if op in (Op.SYSCALL, Op.SPEC_SYSCALL):
        name = SYSCALL_NAMES.get(insn.c, str(insn.c))
        return f"{op.name.lower() + ' ':14s}{name}"
    if op is Op.SPEC_READ:
        return "spec_read         ; hint call substituted for read()"
    if op is Op.CWORK:
        return f"cwork   {insn.a}c (loads={insn.b}, stores={insn.c})"
    if op is Op.SCWORK:
        return f"scwork  {insn.a}c        ; cow-dilated computation"
    return f"{op.name.lower()} a={insn.a} b={insn.b} c={insn.c}"


def _label(target: int, binary: Optional[Binary]) -> str:
    if binary is not None:
        func = binary.function_at_entry(target)
        if func is not None:
            return func.name
    return f"@{target}"


def disassemble(
    binary: Binary,
    start: int = 0,
    end: Optional[int] = None,
) -> Iterator[str]:
    """Yield listing lines for ``binary.text[start:end]``."""
    end = len(binary.text) if end is None else min(end, len(binary.text))
    entries = {f.entry: f.name for f in binary.functions}
    shadow_base = None
    meta = getattr(binary, "spec_meta", None)
    if meta is not None:
        shadow_base = meta.shadow_base

    for index in range(start, end):
        if shadow_base is not None and index == shadow_base:
            yield ";; ---------------- shadow code ----------------"
        if index in entries:
            yield f"{entries[index]}:"
        yield f"  {index:6d}  {format_insn(binary.text[index], binary)}"


def listing(binary: Binary, start: int = 0, end: Optional[int] = None) -> str:
    """The full listing as one string."""
    return "\n".join(disassemble(binary, start, end))
