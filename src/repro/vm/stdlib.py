"""Standard-library routines linked into every benchmark binary.

Mirrors the standard-library structure the paper's tool cares about:

* ``printf``/``fputs`` analogues are registered as *output routines*, which
  SpecHint strips from shadow code ("known not to influence future read
  accesses and can require many cycles to execute");
* ``memcpy``/``strncpy`` are registered as *optimized stdlib* routines —
  the SpecHint objects contain hand-optimized shadow versions whose COW
  checks are loop-minimized (Section 3.3).

All routines follow the calling convention: arguments in a0-a2, result in
v0, ra is the return address; t8/t9 are scratch (caller-saved).
"""

from __future__ import annotations

from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_WRITE, Reg


def emit_stdlib(asm: Assembler) -> None:
    """Emit the standard library into ``asm``.  Call before finish()."""
    _emit_print_str(asm)
    _emit_print_num(asm)
    _emit_memcpy(asm)
    _emit_strncpy(asm)


def _emit_print_str(asm: Assembler) -> None:
    """print_str(a0=addr, a1=len): write a buffer to stdout."""
    with asm.function("print_str", output_routine=True):
        # Formatting work, then the write system call.
        asm.cwork(600, 40, 10)
        asm.mov(Reg.a2, Reg.a1)
        asm.mov(Reg.a1, Reg.a0)
        asm.li(Reg.a0, 1)  # stdout
        asm.syscall(SYS_WRITE)
        asm.ret()


def _emit_print_num(asm: Assembler) -> None:
    """print_num(a0=value): format a number and write it to stdout.

    The formatted digits are built in a small static buffer; output is the
    decimal representation (fixed 20 bytes, space-padded) plus a newline.
    """
    buf = asm.data_space("__printnum_buf", 24)
    with asm.function("print_num", output_routine=True):
        asm.cwork(900, 60, 30)
        asm.la(Reg.t8, "__printnum_buf")
        asm.li(Reg.t9, 20)
        asm.label("print_num_digits")
        # buf[t9-1] = '0' + value % 10; value //= 10
        asm.li(Reg.at, 10)
        asm.mod(Reg.t0, Reg.a0, Reg.at)
        asm.addi(Reg.t0, Reg.t0, ord("0"))
        asm.add(Reg.t1, Reg.t8, Reg.t9)
        asm.storeb(Reg.t0, Reg.t1, -1)
        asm.div(Reg.a0, Reg.a0, Reg.at)
        asm.addi(Reg.t9, Reg.t9, -1)
        asm.bne(Reg.t9, Reg.zero, "print_num_pad_check")
        asm.jmp("print_num_write")
        asm.label("print_num_pad_check")
        asm.bne(Reg.a0, Reg.zero, "print_num_digits")
        # pad the rest with spaces
        asm.label("print_num_pad")
        asm.beq(Reg.t9, Reg.zero, "print_num_write")
        asm.li(Reg.t0, ord(" "))
        asm.add(Reg.t1, Reg.t8, Reg.t9)
        asm.storeb(Reg.t0, Reg.t1, -1)
        asm.addi(Reg.t9, Reg.t9, -1)
        asm.jmp("print_num_pad")
        asm.label("print_num_write")
        asm.li(Reg.t0, ord("\n"))
        asm.storeb(Reg.t0, Reg.t8, 20)
        asm.li(Reg.a0, 1)
        asm.la(Reg.a1, "__printnum_buf")
        asm.li(Reg.a2, 21)
        asm.syscall(SYS_WRITE)
        asm.ret()
    # NB: the data symbol is created before the function; `buf` unused here
    # beyond symbol registration.
    del buf


def _emit_memcpy(asm: Assembler) -> None:
    """memcpy(a0=dst, a1=src, a2=len): word-wise copy (len multiple of 8
    copies fast; a byte tail handles the rest).  Returns dst in v0."""
    with asm.function("memcpy", optimized_stdlib=True):
        asm.mov(Reg.v0, Reg.a0)
        asm.label("memcpy_words")
        asm.slti(Reg.at, Reg.a2, 8)
        asm.bne(Reg.at, Reg.zero, "memcpy_tail")
        asm.load(Reg.t8, Reg.a1, 0)
        asm.store(Reg.t8, Reg.a0, 0)
        asm.addi(Reg.a0, Reg.a0, 8)
        asm.addi(Reg.a1, Reg.a1, 8)
        asm.addi(Reg.a2, Reg.a2, -8)
        asm.jmp("memcpy_words")
        asm.label("memcpy_tail")
        asm.beq(Reg.a2, Reg.zero, "memcpy_done")
        asm.loadb(Reg.t8, Reg.a1, 0)
        asm.storeb(Reg.t8, Reg.a0, 0)
        asm.addi(Reg.a0, Reg.a0, 1)
        asm.addi(Reg.a1, Reg.a1, 1)
        asm.addi(Reg.a2, Reg.a2, -1)
        asm.jmp("memcpy_tail")
        asm.label("memcpy_done")
        asm.ret()


def _emit_strncpy(asm: Assembler) -> None:
    """strncpy(a0=dst, a1=src, a2=n): byte copy stopping at NUL or n."""
    with asm.function("strncpy", optimized_stdlib=True):
        asm.mov(Reg.v0, Reg.a0)
        asm.label("strncpy_loop")
        asm.beq(Reg.a2, Reg.zero, "strncpy_done")
        asm.loadb(Reg.t8, Reg.a1, 0)
        asm.storeb(Reg.t8, Reg.a0, 0)
        asm.addi(Reg.a0, Reg.a0, 1)
        asm.addi(Reg.a1, Reg.a1, 1)
        asm.addi(Reg.a2, Reg.a2, -1)
        asm.bne(Reg.t8, Reg.zero, "strncpy_loop")
        asm.label("strncpy_done")
        asm.ret()
