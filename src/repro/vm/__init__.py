"""SpecVM: the execution substrate standing in for Alpha binaries.

The paper's SpecHint tool rewrites Digital UNIX Alpha binaries.  This
package provides the synthetic equivalent: a small load/store register ISA
with text/data/stack sections, a symbol table, function boundaries, jump
tables, and indirect control transfers — exactly the binary features
SpecHint's transformations operate on.  Programs (the benchmark
applications) are written against :class:`~repro.vm.assembler.Assembler`
and executed by :class:`~repro.vm.machine.Machine` with per-instruction
cycle accounting on the shared simulation clock.
"""

from repro.vm.assembler import Assembler
from repro.vm.binary import Binary, Function, JumpTable
from repro.vm.disasm import format_insn, listing
from repro.vm.isa import Insn, Op, Reg
from repro.vm.machine import Machine
from repro.vm.memory import AddressSpace

__all__ = [
    "Assembler",
    "Binary",
    "Function",
    "JumpTable",
    "Insn",
    "Op",
    "Reg",
    "Machine",
    "AddressSpace",
    "format_insn",
    "listing",
]
