"""The paper's published numbers, for side-by-side reporting.

Values transcribed from Chang & Gibson, OSDI 1999 (tables and figures of
Section 4).  Used by the benchmark harness to print paper-vs-measured
comparisons; absolute values are not expected to match (scaled workloads,
simulated substrate — see DESIGN.md), the *shapes* are.
"""

from __future__ import annotations

#: Table 1 (background; Patterson's manually hinted applications, 4 disks).
TABLE1_MANUAL_IMPROVEMENT = {
    "agrep": 72.0,
    "gnuld": 66.0,
    "xds": 70.0,
}

#: Table 3: (modification time s, transformed size KB, % size increase).
TABLE3 = {
    "agrep": (21.0, 1648, 610.0),
    "gnuld": (23.0, 2408, 349.0),
    "xds": (151.0, 10792, 138.0),
}

#: Figure 3 / Table 7 @ 12 MB: elapsed seconds (original, spec, manual).
FIG3_ELAPSED = {
    "agrep": (21.4, 6.5, 6.2),
    "gnuld": (89.5, 63.3, 30.2),
    "xds": (324.6, 97.0, 94.1),
}

#: Figure 3: % improvement (speculating, manual).
FIG3_IMPROVEMENT = {
    "agrep": (69.0, 70.0),
    "gnuld": (29.0, 66.0),
    "xds": (70.0, 71.0),
}

#: Figure 4: worst-case overhead bound with TIP ignoring hints.
FIG4_MAX_OVERHEAD_PCT = 4.0

#: Table 4: hinting statistics for the speculating applications:
#: (% read calls hinted, % blocks hinted, % bytes hinted, inaccurate hints).
TABLE4_SPECULATING = {
    "agrep": (68.1, 99.6, 99.7, 0),
    "gnuld": (54.9, 67.5, 89.7, 2336),
    "xds": (97.5, 97.5, 99.9, 0),
}

#: Table 4: % read calls hinted by the manually modified applications.
TABLE4_MANUAL_PCT_CALLS = {
    "agrep": 68.3,
    "gnuld": 78.4,
    "xds": 97.6,
}

#: Table 5 rows: {app: {variant: (cache block reads, prefetched, fully %,
#: partially %, unused %, reuses)}}.
TABLE5 = {
    "agrep": {
        "original": (3424, 1031, 51.3, 48.4, 0.4, 416),
        "speculating": (3726, 3003, 90.2, 9.1, 0.8, 655),
        "manual": (3423, 2947, 91.2, 8.8, 0.0, 421),
    },
    "gnuld": {
        "original": (24074, 5511, 46.2, 36.6, 17.3, 12435),
        "speculating": (25353, 12855, 27.2, 42.3, 30.5, 13646),
        "manual": (23892, 10018, 89.2, 10.6, 0.3, 13519),
    },
    "xds": {
        "original": (49997, 60702, 21.1, 20.9, 58.0, 4162),
        "speculating": (50810, 45338, 88.9, 10.8, 0.3, 4973),
        "manual": (49782, 44938, 89.4, 10.6, 0.0, 4491),
    },
}

#: Table 6: {app: {variant: (footprint KB, reclaims, faults, signals)}}.
TABLE6 = {
    "agrep": {
        "original": (160, 39, 4, 0),
        "speculating": (704, 134, 16, 0),
        "manual": (152, 39, 4, 0),
    },
    "gnuld": {
        "original": (10_342, 1341, 12, 0),
        "speculating": (14_541, 1974, 52, 39),
        "manual": (10_752, 1389, 14, 0),
    },
    "xds": {
        "original": (63_488, 8105, 61, 0),
        "speculating": (64_000, 8202, 93, 2),
        "manual": (63_590, 8104, 60, 0),
    },
}

#: Table 7: elapsed seconds by cache size {app: {mb: (orig, spec, manual)}}.
TABLE7 = {
    "agrep": {6: (21.3, 6.5, 6.3), 12: (21.4, 6.5, 6.2), 64: (21.2, 6.4, 6.1)},
    "gnuld": {6: (106.3, 74.7, 34.4), 12: (89.5, 63.3, 30.2),
              64: (56.5, 45.2, 25.4)},
    "xds": {6: (295.0, 94.6, 91.4), 12: (324.6, 97.0, 94.1),
            64: (279.0, 87.8, 85.8)},
}

#: Table 8: elapsed seconds of the original applications by disk count.
TABLE8 = {
    "agrep": {1: 23.8, 2: 24.1, 4: 21.4, 10: 20.1},
    "gnuld": {1: 93.7, 2: 101.3, 4: 89.5, 10: 82.8},
    "xds": {1: 303.5, 2: 292.0, 4: 324.6, 10: 265.7},
}

#: Figure 5 qualitative expectations (checked by the bench):
#: - speculating Gnuld *degrades* with one disk;
#: - all apps gain much less with one disk than with four;
#: - manual improvements increase monotonically with disks.
FIG5_NOTES = (
    "1 disk: prefetching only overlaps computation; speculating Gnuld "
    "degrades (erroneous prefetches consume scarce bandwidth). "
    "10 disks: speculating Agrep cannot generate hints fast enough "
    "(dilation factor), unlike its manual counterpart."
)

#: Section 4.4: median cycles between read calls and dilation factors.
SECTION44_READ_INTERVAL = {"agrep": 30362, "gnuld": 15902, "xds": 4454}
SECTION44_DILATION = {"agrep": 7.5, "gnuld": 1.6, "xds": 1.3}

#: Figure 6: with a processor/disk ratio of 3, speculating Agrep reaches
#: 87% vs manual 84%.
FIG6_AGREP_CROSSOVER_RATIO = 3.0
