"""Crash-safe harness recovery.

Long sweeps (every app x variant x sweep point) can be killed — by the
machine, the batch scheduler, or an impatient operator — with most of the
work already done.  This module makes that survivable:

* every finished cell is appended to a JSON checkpoint file, written
  atomically (write a temp file in the same directory, then ``os.replace``
  it over the old checkpoint) so a crash mid-write never corrupts the
  previous state;
* a restarted sweep passed ``resume=True`` loads the checkpoint, skips
  every completed cell, and recomputes only the missing ones — the
  reassembled results are identical to an uninterrupted run because every
  cell is seeded independently;
* version and identity mismatches (a checkpoint from a different sweep or
  an incompatible format) raise a typed
  :class:`~repro.errors.CheckpointError` instead of silently mixing
  incompatible results.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import tempfile
import threading
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.harness.results import RunResult

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


def _fsync_directory(directory: str) -> None:
    """Flush a directory's metadata so a just-renamed entry is durable.

    ``os.replace`` makes the rename atomic with respect to readers, but a
    power-loss-style kill can still roll it back unless the containing
    directory is fsynced too.  Best-effort: filesystems that reject
    directory fsync (some network mounts) keep the old guarantee.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        dir_fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_json(path: str, obj: object) -> None:
    """Write ``obj`` as JSON to ``path`` atomically and durably.

    The temp file lives in the target's directory so ``os.replace`` is a
    same-filesystem rename: readers observe either the old complete file
    or the new complete file, never a torn write.  After the rename the
    containing directory is fsynced, so the new file survives a
    power-loss-style kill as well as a process kill.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(obj, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


@contextlib.contextmanager
def flush_on_signals(
    flush: Callable[[], None],
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Install handlers that flush a checkpoint before dying.

    A Ctrl-C'd (SIGINT) or terminated (SIGTERM) sweep flushes its
    checkpoint and then exits the way the signal intended — SIGINT
    re-raises as :class:`KeyboardInterrupt`, SIGTERM as ``SystemExit``
    with the conventional ``128 + signum`` status — so the next
    ``--resume`` restores every completed cell.  Outside the main thread
    (where Python forbids installing handlers) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    previous: Dict[int, object] = {}

    def handler(signum: int, frame: object) -> None:
        try:
            flush()
        finally:
            for num, old in previous.items():
                signal.signal(num, old)  # type: ignore[arg-type]
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, handler)
    except (ValueError, OSError):
        # Embedded interpreter or exotic platform: run unguarded.
        for num, old in previous.items():
            signal.signal(num, old)  # type: ignore[arg-type]
        yield
        return
    try:
        yield
    finally:
        for num, old in previous.items():
            signal.signal(num, old)  # type: ignore[arg-type]


class SweepCheckpoint:
    """Checkpointed per-cell results of one sweep.

    Cells are keyed by a caller-chosen string (e.g. ``"disks=4/agrep/
    speculating"``).  The ``identity`` string names the sweep; resuming
    against a checkpoint written by a different sweep is a typed error.
    """

    def __init__(self, path: str, identity: str) -> None:
        self.path = path
        self.identity = identity
        self._cells: Dict[str, Dict[str, object]] = {}
        #: Poisoned cells: key -> quarantine record (failure kinds and
        #: tracebacks).  Kept separate from ``cells`` so resuming retries
        #: them — quarantine documents a completed run, it is not a
        #: permanent verdict on the cell.
        self._quarantined: Dict[str, Dict[str, object]] = {}

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str, identity: str) -> "SweepCheckpoint":
        """Load an existing checkpoint; typed errors on any corruption."""
        checkpoint = cls(path, identity)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint at {path!r} to resume from"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is unreadable or corrupt: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint {path!r}: not a JSON object")
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r}: version {version!r} is not "
                f"{CHECKPOINT_VERSION}"
            )
        stored_identity = data.get("identity")
        if stored_identity != identity:
            raise CheckpointError(
                f"checkpoint {path!r} belongs to sweep {stored_identity!r}, "
                f"not {identity!r}"
            )
        cells = data.get("cells")
        if not isinstance(cells, dict):
            raise CheckpointError(f"checkpoint {path!r}: no cell table")
        checkpoint._cells = cells
        quarantined = data.get("quarantined", {})
        if not isinstance(quarantined, dict):
            raise CheckpointError(f"checkpoint {path!r}: bad quarantine table")
        checkpoint._quarantined = quarantined
        return checkpoint

    def flush(self) -> None:
        """Persist the current state atomically; typed error on failure."""
        state: Dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "identity": self.identity,
            "cells": self._cells,
        }
        if self._quarantined:
            state["quarantined"] = self._quarantined
        try:
            atomic_write_json(self.path, state)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path!r}: {exc}"
            ) from exc

    # -- cells -----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def keys(self) -> List[str]:
        return sorted(self._cells)

    def record(self, key: str, result: RunResult) -> None:
        """Store one finished cell and flush the checkpoint to disk."""
        self.record_payload(key, result.to_jsonable())

    def record_payload(self, key: str, payload: Dict[str, object]) -> None:
        """Store one finished cell's raw JSON payload and flush.

        The parallel engine moves results between processes as jsonable
        dicts; recording them verbatim keeps the checkpoint byte-identical
        to one written by the serial path for the same cells.
        """
        self._cells[key] = payload
        self._quarantined.pop(key, None)
        self.flush()

    def payload(self, key: str) -> Dict[str, object]:
        """One cell's raw JSON payload; typed error when absent."""
        try:
            return self._cells[key]
        except KeyError:
            raise CheckpointError(f"checkpoint has no cell {key!r}") from None

    def result(self, key: str) -> RunResult:
        data = self.payload(key)
        try:
            return RunResult.from_jsonable(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint cell {key!r} is malformed: {exc}"
            ) from exc

    # -- quarantine ------------------------------------------------------------

    @property
    def quarantined(self) -> Dict[str, Dict[str, object]]:
        """Quarantine records of poisoned cells (read-only view)."""
        return dict(self._quarantined)

    def record_quarantine(self, key: str, record: Dict[str, object]) -> None:
        """Mark one cell as poisoned (with its failure record) and flush."""
        self._quarantined[key] = record
        self.flush()

    def merge_from(self, other: "SweepCheckpoint") -> int:
        """Adopt cells from ``other`` (same identity) that we lack.

        Returns the number of cells adopted.  Used by the parallel engine
        to fold per-worker partial checkpoints into the main one; the
        caller flushes once after merging every partial, so the merge is
        atomic with respect to crashes (the main checkpoint is either the
        old or the fully merged state).
        """
        if other.identity != self.identity:
            raise CheckpointError(
                f"cannot merge checkpoint of sweep {other.identity!r} "
                f"into {self.identity!r}"
            )
        adopted = 0
        for key, payload in other._cells.items():
            if key not in self._cells:
                self._cells[key] = payload
                adopted += 1
        return adopted


def run_cells(
    cells: List[Tuple[str, Callable[[], RunResult]]],
    checkpoint_path: Optional[str] = None,
    identity: str = "sweep",
    resume: bool = False,
    progress: Optional[Callable[[str, bool], None]] = None,
    registry_path: Optional[str] = None,
    registry_meta: Optional[Dict[str, object]] = None,
) -> Dict[str, RunResult]:
    """Run a list of (key, thunk) cells with optional checkpointing.

    Without ``checkpoint_path`` this is a plain loop.  With it, each
    finished cell is checkpointed atomically; with ``resume`` also set,
    previously checkpointed cells are restored instead of re-run.
    ``progress`` (if given) is called with ``(key, was_resumed)`` per cell.
    While a checkpoint is active, SIGINT/SIGTERM flush it before the
    process exits, so an interrupted sweep resumes cleanly.

    With ``registry_path`` set, every cell result (fresh and restored
    alike — recording is idempotent) is also folded into the persistent
    run registry under the ``registry_meta`` record context, matching
    the parallel engine's registry semantics byte for byte.
    """
    checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint_path is not None:
        if resume and os.path.exists(checkpoint_path):
            checkpoint = SweepCheckpoint.load(checkpoint_path, identity)
        else:
            # Fresh start (also the resume path when no checkpoint exists
            # yet: there is nothing to restore, so begin from scratch).
            checkpoint = SweepCheckpoint(checkpoint_path, identity)
            checkpoint.flush()

    guard = (
        flush_on_signals(checkpoint.flush)
        if checkpoint is not None
        else contextlib.nullcontext()
    )
    results: Dict[str, RunResult] = {}
    with guard:
        for key, thunk in cells:
            if checkpoint is not None and key in checkpoint:
                results[key] = checkpoint.result(key)
                if progress is not None:
                    progress(key, True)
                continue
            result = thunk()
            results[key] = result
            if checkpoint is not None:
                checkpoint.record(key, result)
            if progress is not None:
                progress(key, False)
    if registry_path is not None:
        from repro.harness.parallel import record_results_in_registry

        record_results_in_registry(
            registry_path,
            {key: result.to_jsonable() for key, result in results.items()},
            registry_meta,
        )
    return results
