"""Crash-safe harness recovery.

Long sweeps (every app x variant x sweep point) can be killed — by the
machine, the batch scheduler, or an impatient operator — with most of the
work already done.  This module makes that survivable:

* every finished cell is appended to a JSON checkpoint file, written
  atomically (write a temp file in the same directory, then ``os.replace``
  it over the old checkpoint) so a crash mid-write never corrupts the
  previous state;
* a restarted sweep passed ``resume=True`` loads the checkpoint, skips
  every completed cell, and recomputes only the missing ones — the
  reassembled results are identical to an uninterrupted run because every
  cell is seeded independently;
* version and identity mismatches (a checkpoint from a different sweep or
  an incompatible format) raise a typed
  :class:`~repro.errors.CheckpointError` instead of silently mixing
  incompatible results.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.harness.results import RunResult

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


def atomic_write_json(path: str, obj: object) -> None:
    """Write ``obj`` as JSON to ``path`` atomically.

    The temp file lives in the target's directory so ``os.replace`` is a
    same-filesystem rename: readers observe either the old complete file
    or the new complete file, never a torn write.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(obj, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class SweepCheckpoint:
    """Checkpointed per-cell results of one sweep.

    Cells are keyed by a caller-chosen string (e.g. ``"disks=4/agrep/
    speculating"``).  The ``identity`` string names the sweep; resuming
    against a checkpoint written by a different sweep is a typed error.
    """

    def __init__(self, path: str, identity: str) -> None:
        self.path = path
        self.identity = identity
        self._cells: Dict[str, Dict[str, object]] = {}

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str, identity: str) -> "SweepCheckpoint":
        """Load an existing checkpoint; typed errors on any corruption."""
        checkpoint = cls(path, identity)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint at {path!r} to resume from"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is unreadable or corrupt: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint {path!r}: not a JSON object")
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r}: version {version!r} is not "
                f"{CHECKPOINT_VERSION}"
            )
        stored_identity = data.get("identity")
        if stored_identity != identity:
            raise CheckpointError(
                f"checkpoint {path!r} belongs to sweep {stored_identity!r}, "
                f"not {identity!r}"
            )
        cells = data.get("cells")
        if not isinstance(cells, dict):
            raise CheckpointError(f"checkpoint {path!r}: no cell table")
        checkpoint._cells = cells
        return checkpoint

    def flush(self) -> None:
        """Persist the current state atomically."""
        atomic_write_json(self.path, {
            "version": CHECKPOINT_VERSION,
            "identity": self.identity,
            "cells": self._cells,
        })

    # -- cells -----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def keys(self) -> List[str]:
        return sorted(self._cells)

    def record(self, key: str, result: RunResult) -> None:
        """Store one finished cell and flush the checkpoint to disk."""
        self._cells[key] = result.to_jsonable()
        self.flush()

    def result(self, key: str) -> RunResult:
        try:
            data = self._cells[key]
        except KeyError:
            raise CheckpointError(f"checkpoint has no cell {key!r}") from None
        try:
            return RunResult.from_jsonable(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint cell {key!r} is malformed: {exc}"
            ) from exc


def run_cells(
    cells: List[Tuple[str, Callable[[], RunResult]]],
    checkpoint_path: Optional[str] = None,
    identity: str = "sweep",
    resume: bool = False,
    progress: Optional[Callable[[str, bool], None]] = None,
) -> Dict[str, RunResult]:
    """Run a list of (key, thunk) cells with optional checkpointing.

    Without ``checkpoint_path`` this is a plain loop.  With it, each
    finished cell is checkpointed atomically; with ``resume`` also set,
    previously checkpointed cells are restored instead of re-run.
    ``progress`` (if given) is called with ``(key, was_resumed)`` per cell.
    """
    checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint_path is not None:
        if resume and os.path.exists(checkpoint_path):
            checkpoint = SweepCheckpoint.load(checkpoint_path, identity)
        else:
            # Fresh start (also the resume path when no checkpoint exists
            # yet: there is nothing to restore, so begin from scratch).
            checkpoint = SweepCheckpoint(checkpoint_path, identity)
            checkpoint.flush()

    results: Dict[str, RunResult] = {}
    for key, thunk in cells:
        if checkpoint is not None and key in checkpoint:
            results[key] = checkpoint.result(key)
            if progress is not None:
                progress(key, True)
            continue
        result = thunk()
        results[key] = result
        if checkpoint is not None:
            checkpoint.record(key, result)
        if progress is not None:
            progress(key, False)
    return results
