"""Run results and derived metrics for the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    app: str
    variant: str
    cycles: int
    cpu_hz: int
    counters: Dict[str, int] = field(default_factory=dict)
    output: bytes = b""

    #: Median cycles between consecutive read calls / hint calls (the
    #: paper's Section 4.4 dilation analysis).
    median_read_interval: float = 0.0
    median_hint_interval: float = 0.0

    #: SpecHint runtime statistics (speculating variant only).
    spec_restarts: int = 0
    spec_signals: int = 0
    spec_cancel_calls: int = 0
    spec_hints_issued: int = 0
    spec_parks: Dict[str, int] = field(default_factory=dict)
    transform_report: Optional[object] = None

    #: Table 6 memory accounting.
    footprint_bytes: int = 0
    page_reclaims: int = 0
    page_faults: int = 0

    #: Chaos-mode provenance: the fault profile the run executed under
    #: (None = fault-free) and the watchdog trip reason, if it tripped.
    fault_profile: Optional[str] = None
    watchdog_tripped: Optional[str] = None

    # -- elapsed time ---------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Simulated elapsed time in seconds."""
        return self.cycles / self.cpu_hz

    def improvement_over(self, baseline: "RunResult") -> float:
        """Percent reduction in execution time relative to ``baseline``."""
        if baseline.cycles <= 0:
            return 0.0
        return 100.0 * (baseline.cycles - self.cycles) / baseline.cycles

    # -- counter accessors -------------------------------------------------------

    def c(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    # Table 4 -----------------------------------------------------------------

    @property
    def read_calls(self) -> int:
        return self.c("app.read_calls")

    @property
    def read_blocks(self) -> int:
        return self.c("app.read_blocks")

    @property
    def read_bytes(self) -> int:
        return self.c("app.read_bytes")

    @property
    def write_calls(self) -> int:
        return self.c("app.write_calls")

    @property
    def write_blocks(self) -> int:
        return self.c("app.write_blocks")

    @property
    def write_bytes(self) -> int:
        return self.c("app.write_bytes")

    @property
    def hinted_read_calls(self) -> int:
        return self.c("tip.hinted_read_calls")

    @property
    def hinted_read_bytes(self) -> int:
        return self.c("tip.hinted_read_bytes")

    @property
    def hinted_blocks_consumed(self) -> int:
        return self.c("tip.hints_consumed")

    @property
    def pct_calls_hinted(self) -> float:
        return 100.0 * self.hinted_read_calls / self.read_calls if self.read_calls else 0.0

    @property
    def pct_blocks_hinted(self) -> float:
        if not self.read_blocks:
            return 0.0
        return min(100.0, 100.0 * self.hinted_blocks_consumed / self.read_blocks)

    @property
    def pct_bytes_hinted(self) -> float:
        return 100.0 * self.hinted_read_bytes / self.read_bytes if self.read_bytes else 0.0

    @property
    def inaccurate_hints(self) -> int:
        """Hints issued that never matched a read (cancelled + stale +
        unconsumed at the end of the run)."""
        return (
            self.c("tip.hints_cancelled")
            + self.c("tip.hints_stale_dropped")
            + self.c("tip.hints_unconsumed_at_end")
        )

    # Table 5 -------------------------------------------------------------------

    @property
    def cache_block_reads(self) -> int:
        return self.c("cache.block_reads")

    @property
    def prefetched_blocks(self) -> int:
        return self.c("cache.prefetched_blocks")

    @property
    def prefetched_fully(self) -> int:
        return self.c("cache.prefetched_fully")

    @property
    def prefetched_partially(self) -> int:
        return self.c("cache.prefetched_partial")

    @property
    def prefetched_unused(self) -> int:
        return self.c("cache.prefetched_unused")

    @property
    def cache_block_reuses(self) -> int:
        return self.c("cache.block_reuses")

    # Fault injection / degraded mode ------------------------------------------

    #: Counter prefixes that constitute the fault-event record of a run.
    FAULT_PREFIXES = ("faults.", "array.retries", "array.timeouts",
                      "array.faulted_attempts", "array.demand_failures",
                      "array.prefetches_dropped", "cache.prefetches_dropped",
                      "cache.fetch_failures", "tip.prefetches_dropped",
                      "spec.watchdog")

    def fault_events(self) -> Dict[str, int]:
        """Every fault / retry / degradation counter the run recorded.

        Two runs with the same workload, system seed, and fault seed must
        produce identical dicts — the chaos benchmarks assert this.
        """
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if name.startswith(self.FAULT_PREFIXES) and value
        }

    @property
    def disk_faults(self) -> int:
        return (
            self.c("faults.disk_transient_errors")
            + self.c("faults.disk_offline_rejects")
        )

    @property
    def io_retries(self) -> int:
        return self.c("array.retries")

    @property
    def io_timeouts(self) -> int:
        return self.c("array.timeouts")

    @property
    def prefetches_dropped(self) -> int:
        return self.c("cache.prefetches_dropped")

    # Section 4.4 dilation ------------------------------------------------------

    @property
    def dilation_factor(self) -> float:
        """Median hint interval / median read interval (> 1 mainly due to
        COW checks during speculative execution)."""
        if self.median_read_interval <= 0 or self.median_hint_interval <= 0:
            return 0.0
        return self.median_hint_interval / self.median_read_interval

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.app}/{self.variant}: {self.elapsed_s:.2f}s simulated, "
            f"{self.read_calls} reads ({self.pct_calls_hinted:.1f}% hinted), "
            f"{self.prefetched_blocks} prefetched blocks"
        )


def median_interval(times: List[float]) -> float:
    """Median gap between consecutive observations of an event-time list."""
    if len(times) < 2:
        return 0.0
    gaps = sorted(b - a for a, b in zip(times, times[1:]))
    return gaps[len(gaps) // 2]
