"""Run results and derived metrics for the paper's tables."""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RegistryError
from repro.sim import metrics

#: Serialization format version of :meth:`RunResult.to_jsonable`.
#: Version 1 (implicit, no ``schema_version`` key) predates the run
#: registry; version 2 adds the registry key fields (``params_digest``,
#: ``seed``, ``spec_params``) and optional tuning provenance.  Bump on
#: any incompatible layout change.
RESULT_SCHEMA_VERSION = 2

#: Versions :meth:`RunResult.from_jsonable` can still deserialize.
SUPPORTED_RESULT_SCHEMAS = (1, RESULT_SCHEMA_VERSION)


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    app: str
    variant: str
    cycles: int
    cpu_hz: int
    counters: Dict[str, int] = field(default_factory=dict)
    output: bytes = b""

    #: Median cycles between consecutive read calls / hint calls (the
    #: paper's Section 4.4 dilation analysis).
    median_read_interval: float = 0.0
    median_hint_interval: float = 0.0

    #: SpecHint runtime statistics (speculating variant only).
    spec_restarts: int = 0
    spec_signals: int = 0
    spec_cancel_calls: int = 0
    spec_hints_issued: int = 0
    spec_parks: Dict[str, int] = field(default_factory=dict)
    transform_report: Optional[object] = None

    #: Table 6 memory accounting.
    footprint_bytes: int = 0
    page_reclaims: int = 0
    page_faults: int = 0

    #: Chaos-mode provenance: the fault profile the run executed under
    #: (None = fault-free) and the watchdog trip reason, if it tripped.
    fault_profile: Optional[str] = None
    watchdog_tripped: Optional[str] = None

    #: Demand-read trace: (ino, offset, length) per original-thread read
    #: call, in program order.  The differential oracle compares this
    #: sequence across spec-on/off runs.
    read_trace: Tuple[Tuple[int, int, int], ...] = ()

    #: Isolation-audit outcome (speculating variant only).
    isolation_violations: int = 0
    quarantines: int = 0
    quarantine_permanent: bool = False
    audit_records: int = 0
    audit_head_digest: str = ""

    #: Wall-time phase attribution (repro.trace.phases.StallBreakdown as a
    #: jsonable dict): compute / checks / demand_stall / speculation / other.
    stall_breakdown: Dict[str, int] = field(default_factory=dict)
    #: Hint-lifecycle ledger: disclosed / consumed / cancelled / wasted / open.
    hint_lifecycle: Dict[str, int] = field(default_factory=dict)
    #: Median disclosure-to-consumption lead time (cycles).
    hint_lead_median: float = 0.0
    #: % of consumed hints whose prefetch had landed before the demand read.
    pct_prefetches_before_demand: float = 0.0

    #: Run-registry key fields (see :mod:`repro.registry`): a digest of
    #: the resolved configuration (excluding the system seed, the chaos
    #: plan, and the variant — those are separate registry keys), the
    #: system seed the run executed under, and the effective speculation
    #: tunables (throttle + watchdog) — the knobs the AutoTuner turns.
    params_digest: str = ""
    seed: int = 0
    spec_params: Dict[str, object] = field(default_factory=dict)
    #: AutoTuner provenance: where ``spec_params`` came from when the run
    #: was tuned from the registry (None for hand-configured runs).
    tuning_provenance: Optional[Dict[str, object]] = None

    # -- elapsed time ---------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Simulated elapsed time in seconds."""
        return self.cycles / self.cpu_hz

    def improvement_over(self, baseline: "RunResult") -> float:
        """Percent reduction in execution time relative to ``baseline``."""
        if baseline.cycles <= 0:
            return 0.0
        return 100.0 * (baseline.cycles - self.cycles) / baseline.cycles

    # -- counter accessors -------------------------------------------------------

    def c(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    # Table 4 -----------------------------------------------------------------

    @property
    def read_calls(self) -> int:
        return self.c(metrics.APP_READ_CALLS)

    @property
    def read_blocks(self) -> int:
        return self.c(metrics.APP_READ_BLOCKS)

    @property
    def read_bytes(self) -> int:
        return self.c(metrics.APP_READ_BYTES)

    @property
    def write_calls(self) -> int:
        return self.c(metrics.APP_WRITE_CALLS)

    @property
    def write_blocks(self) -> int:
        return self.c(metrics.APP_WRITE_BLOCKS)

    @property
    def write_bytes(self) -> int:
        return self.c(metrics.APP_WRITE_BYTES)

    @property
    def hinted_read_calls(self) -> int:
        return self.c(metrics.TIP_HINTED_READ_CALLS)

    @property
    def hinted_read_bytes(self) -> int:
        return self.c(metrics.TIP_HINTED_READ_BYTES)

    @property
    def hinted_blocks_consumed(self) -> int:
        return self.c(metrics.TIP_HINTS_CONSUMED)

    @property
    def pct_calls_hinted(self) -> float:
        return 100.0 * self.hinted_read_calls / self.read_calls if self.read_calls else 0.0

    @property
    def pct_blocks_hinted(self) -> float:
        if not self.read_blocks:
            return 0.0
        return min(100.0, 100.0 * self.hinted_blocks_consumed / self.read_blocks)

    @property
    def pct_bytes_hinted(self) -> float:
        return 100.0 * self.hinted_read_bytes / self.read_bytes if self.read_bytes else 0.0

    @property
    def inaccurate_hints(self) -> int:
        """Hints issued that never matched a read (cancelled + stale +
        unconsumed at the end of the run)."""
        return (
            self.c(metrics.TIP_HINTS_CANCELLED)
            + self.c(metrics.TIP_HINTS_STALE_DROPPED)
            + self.c(metrics.TIP_HINTS_UNCONSUMED_AT_END)
        )

    # Table 5 -------------------------------------------------------------------

    @property
    def cache_block_reads(self) -> int:
        return self.c(metrics.CACHE_BLOCK_READS)

    @property
    def prefetched_blocks(self) -> int:
        return self.c(metrics.CACHE_PREFETCHED_BLOCKS)

    @property
    def prefetched_fully(self) -> int:
        return self.c(metrics.CACHE_PREFETCHED_FULLY)

    @property
    def prefetched_partially(self) -> int:
        return self.c(metrics.CACHE_PREFETCHED_PARTIAL)

    @property
    def prefetched_unused(self) -> int:
        return self.c(metrics.CACHE_PREFETCHED_UNUSED)

    @property
    def cache_block_reuses(self) -> int:
        return self.c(metrics.CACHE_BLOCK_REUSES)

    # Fault injection / degraded mode ------------------------------------------

    #: Counter prefixes that constitute the fault-event record of a run.
    FAULT_PREFIXES = ("faults.", "array.retries", "array.timeouts",
                      "array.faulted_attempts", "array.demand_failures",
                      "array.prefetches_dropped", "cache.prefetches_dropped",
                      "cache.fetch_failures", "tip.prefetches_dropped",
                      "spec.watchdog", "spec.isolation", "spec.quarantine",
                      "array.disk_deaths", "array.degraded_reads",
                      "array.reconstructed_blocks", "array.hedges",
                      "rebuild.", "tip.prefetches_shed_degraded",
                      "cache.shed_degraded.", "spec.degraded")

    def fault_events(self) -> Dict[str, int]:
        """Every fault / retry / degradation counter the run recorded.

        Two runs with the same workload, system seed, and fault seed must
        produce identical dicts — the chaos benchmarks assert this.
        """
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if name.startswith(self.FAULT_PREFIXES) and value
        }

    @property
    def disk_faults(self) -> int:
        return (
            self.c("faults.disk_transient_errors")
            + self.c("faults.disk_offline_rejects")
        )

    @property
    def io_retries(self) -> int:
        return self.c(metrics.ARRAY_RETRIES)

    @property
    def io_timeouts(self) -> int:
        return self.c(metrics.ARRAY_TIMEOUTS)

    @property
    def prefetches_dropped(self) -> int:
        return self.c(metrics.CACHE_PREFETCHES_DROPPED)

    # Degraded mode / redundancy ------------------------------------------------

    @property
    def disk_deaths(self) -> int:
        return self.c(metrics.ARRAY_DISK_DEATHS)

    @property
    def degraded_reads(self) -> int:
        return self.c(metrics.ARRAY_DEGRADED_READS)

    @property
    def reconstructed_blocks(self) -> int:
        return self.c(metrics.ARRAY_RECONSTRUCTED_BLOCKS)

    @property
    def hedges_issued(self) -> int:
        return self.c(metrics.ARRAY_HEDGES_ISSUED)

    @property
    def hedges_won(self) -> int:
        return self.c(metrics.ARRAY_HEDGES_WON)

    @property
    def rebuild_completed(self) -> bool:
        return self.c(metrics.REBUILD_COMPLETED) > 0

    @property
    def rebuild_completed_cycle(self) -> int:
        """Sim-clock cycle at which the (last) rebuild finished resilvering
        (0 when no rebuild ran to completion)."""
        return self.c(metrics.REBUILD_COMPLETED_CYCLE)

    @property
    def rebuild_blocks(self) -> int:
        return self.c(metrics.REBUILD_BLOCKS)

    @property
    def workload_cycles(self) -> int:
        """Cycles until the workload itself finished.  Equal to ``cycles``
        unless a rebuild outlived the workload, in which case ``cycles``
        additionally covers the rebuild drain tail."""
        return self.c(metrics.WORKLOAD_COMPLETED_CYCLE) or self.cycles

    @property
    def workload_elapsed_s(self) -> float:
        """Simulated seconds until the workload finished (see
        :attr:`workload_cycles`)."""
        return self.workload_cycles / self.cpu_hz

    @property
    def data_loss_events(self) -> int:
        return self.c(metrics.FAULTS_DATA_LOSS)

    @property
    def prefetches_shed_degraded(self) -> int:
        """Speculative load shed while degraded (TIP + readahead origins)."""
        shed = self.c(metrics.TIP_PREFETCHES_SHED_DEGRADED)
        for name, value in self.counters.items():
            if name.startswith(metrics.CACHE_SHED_DEGRADED_PREFIX):
                shed += value
        return shed

    def per_disk_io_counters(self) -> Dict[int, Dict[str, int]]:
        """Per-disk I/O health: retries / timeouts / hedges (issued and
        won) by disk id.

        Parsed back out of the ``disk<N>.<suffix>`` counters; disks with
        no recorded events are absent.
        """
        suffixes = (metrics.DISK_RETRIES_SUFFIX, metrics.DISK_TIMEOUTS_SUFFIX,
                    metrics.DISK_HEDGES_SUFFIX, metrics.DISK_HEDGES_WON_SUFFIX)
        table: Dict[int, Dict[str, int]] = {}
        for name, value in self.counters.items():
            if not name.startswith(metrics.DISK_PREFIX) or not value:
                continue
            head, _, suffix = name.partition(".")
            if suffix not in suffixes:
                continue
            digits = head[len(metrics.DISK_PREFIX):]
            if not digits.isdigit():
                continue
            table.setdefault(int(digits), {})[suffix] = value
        return table

    # Section 4.4 dilation ------------------------------------------------------

    @property
    def dilation_factor(self) -> float:
        """Median hint interval / median read interval (> 1 mainly due to
        COW checks during speculative execution)."""
        if self.median_read_interval <= 0 or self.median_hint_interval <= 0:
            return 0.0
        return self.median_hint_interval / self.median_read_interval

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.app}/{self.variant}: {self.elapsed_s:.2f}s simulated, "
            f"{self.read_calls} reads ({self.pct_calls_hinted:.1f}% hinted), "
            f"{self.prefetched_blocks} prefetched blocks"
        )

    # -- checkpoint serialization -------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """JSON-safe dict for harness checkpoints.

        The transform report is deliberately excluded (it is derivable by
        re-running the transform and is not needed to resume a sweep).
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "app": self.app,
            "variant": self.variant,
            "cycles": self.cycles,
            "cpu_hz": self.cpu_hz,
            "counters": dict(self.counters),
            "output_b64": base64.b64encode(self.output).decode("ascii"),
            "median_read_interval": self.median_read_interval,
            "median_hint_interval": self.median_hint_interval,
            "spec_restarts": self.spec_restarts,
            "spec_signals": self.spec_signals,
            "spec_cancel_calls": self.spec_cancel_calls,
            "spec_hints_issued": self.spec_hints_issued,
            "spec_parks": dict(self.spec_parks),
            "footprint_bytes": self.footprint_bytes,
            "page_reclaims": self.page_reclaims,
            "page_faults": self.page_faults,
            "fault_profile": self.fault_profile,
            "watchdog_tripped": self.watchdog_tripped,
            "read_trace": [list(entry) for entry in self.read_trace],
            "isolation_violations": self.isolation_violations,
            "quarantines": self.quarantines,
            "quarantine_permanent": self.quarantine_permanent,
            "audit_records": self.audit_records,
            "audit_head_digest": self.audit_head_digest,
            "stall_breakdown": dict(self.stall_breakdown),
            "hint_lifecycle": dict(self.hint_lifecycle),
            "hint_lead_median": self.hint_lead_median,
            "pct_prefetches_before_demand": self.pct_prefetches_before_demand,
            "params_digest": self.params_digest,
            "seed": self.seed,
            "spec_params": dict(self.spec_params),
            "tuning_provenance": (dict(self.tuning_provenance)
                                  if self.tuning_provenance is not None
                                  else None),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_jsonable` output.

        Version-1 payloads (pre-registry, no ``schema_version`` key) are
        accepted for backward compatibility with old checkpoints; any
        other unknown version raises a typed
        :class:`~repro.errors.RegistryError` — a payload written by a
        future format must never deserialize silently.
        """
        version = data.get("schema_version", 1)
        if version not in SUPPORTED_RESULT_SCHEMAS:
            raise RegistryError(
                f"RunResult payload has schema_version {version!r}; this "
                f"code reads versions {SUPPORTED_RESULT_SCHEMAS} — the "
                f"payload was written by an incompatible code version"
            )
        result = cls(
            app=str(data["app"]),
            variant=str(data["variant"]),
            cycles=int(data["cycles"]),  # type: ignore[arg-type]
            cpu_hz=int(data["cpu_hz"]),  # type: ignore[arg-type]
            counters={str(k): int(v) for k, v in dict(data["counters"]).items()},  # type: ignore[call-overload]
            output=base64.b64decode(str(data["output_b64"])),
        )
        result.median_read_interval = float(data.get("median_read_interval", 0.0))  # type: ignore[arg-type]
        result.median_hint_interval = float(data.get("median_hint_interval", 0.0))  # type: ignore[arg-type]
        result.spec_restarts = int(data.get("spec_restarts", 0))  # type: ignore[arg-type]
        result.spec_signals = int(data.get("spec_signals", 0))  # type: ignore[arg-type]
        result.spec_cancel_calls = int(data.get("spec_cancel_calls", 0))  # type: ignore[arg-type]
        result.spec_hints_issued = int(data.get("spec_hints_issued", 0))  # type: ignore[arg-type]
        result.spec_parks = {
            str(k): int(v) for k, v in dict(data.get("spec_parks", {})).items()  # type: ignore[call-overload]
        }
        result.footprint_bytes = int(data.get("footprint_bytes", 0))  # type: ignore[arg-type]
        result.page_reclaims = int(data.get("page_reclaims", 0))  # type: ignore[arg-type]
        result.page_faults = int(data.get("page_faults", 0))  # type: ignore[arg-type]
        fault_profile = data.get("fault_profile")
        result.fault_profile = str(fault_profile) if fault_profile is not None else None
        tripped = data.get("watchdog_tripped")
        result.watchdog_tripped = str(tripped) if tripped is not None else None
        result.read_trace = tuple(
            tuple(int(x) for x in entry) for entry in data.get("read_trace", [])  # type: ignore[union-attr, arg-type]
        )
        result.isolation_violations = int(data.get("isolation_violations", 0))  # type: ignore[arg-type]
        result.quarantines = int(data.get("quarantines", 0))  # type: ignore[arg-type]
        result.quarantine_permanent = bool(data.get("quarantine_permanent", False))
        result.audit_records = int(data.get("audit_records", 0))  # type: ignore[arg-type]
        result.audit_head_digest = str(data.get("audit_head_digest", ""))
        result.stall_breakdown = {
            str(k): int(v)  # type: ignore[call-overload]
            for k, v in dict(data.get("stall_breakdown", {})).items()
        }
        result.hint_lifecycle = {
            str(k): int(v)  # type: ignore[call-overload]
            for k, v in dict(data.get("hint_lifecycle", {})).items()
        }
        result.hint_lead_median = float(data.get("hint_lead_median", 0.0))  # type: ignore[arg-type]
        result.pct_prefetches_before_demand = float(
            data.get("pct_prefetches_before_demand", 0.0)  # type: ignore[arg-type]
        )
        result.params_digest = str(data.get("params_digest", ""))
        result.seed = int(data.get("seed", 0))  # type: ignore[arg-type]
        result.spec_params = dict(data.get("spec_params", {}))  # type: ignore[arg-type]
        provenance = data.get("tuning_provenance")
        result.tuning_provenance = (dict(provenance)  # type: ignore[arg-type]
                                    if provenance is not None else None)
        return result


def median_interval(times: List[float]) -> float:
    """Median gap between consecutive observations of an event-time list."""
    if len(times) < 2:
        return 0.0
    gaps = sorted(b - a for a, b in zip(times, times[1:]))
    return gaps[len(gaps) // 2]
