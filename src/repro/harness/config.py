"""Experiment configuration."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan, profile
from repro.params import SystemConfig, scaled_cache_blocks

#: The paper's three transformed benchmarks (every table/figure).
APPS = ("agrep", "gnuld", "xds")

#: Including extensions: the Table 1 Postgres join at 20 % and 80 %
#: selectivity (the paper lists them among Patterson's manually hinted
#: baselines; transforming them is an extension of this reproduction).
ALL_APPS = APPS + ("postgres20", "postgres80")


class Variant(enum.Enum):
    """The three executables of every figure in the paper."""

    #: The unmodified, non-hinting application.
    ORIGINAL = "original"
    #: The SpecHint-transformed executable.
    SPECULATING = "speculating"
    #: The manually modified (programmer-hinted) application.
    MANUAL = "manual"


@dataclass(frozen=True)
class ExperimentConfig:
    """One benchmark run."""

    app: str = "agrep"
    variant: Variant = Variant.ORIGINAL
    system: SystemConfig = dataclasses.field(default_factory=SystemConfig)

    #: File cache size in the paper's units (MB before the ~8x workload
    #: scaling); None keeps ``system.cache.capacity_blocks``.
    cache_paper_mb: Optional[float] = 12.0

    #: Workload scale factor (sweep benches use < 1 to stay fast).
    workload_scale: float = 1.0

    #: SpecHint tool option: allow the handling routine to map any text
    #: address (extension ablation), not just function entries.
    map_all_addresses: bool = False

    #: SpecHint tool option: run the static-analysis pass and apply its
    #: elision plan (skip provably unnecessary COW checks, statically
    #: redirect provably resolved computed transfers).
    analysis_optimize: bool = False

    #: Disk speed-up matching the workload scaling (see
    #: ``DiskParams.scaled``); None keeps ``system.disk`` untouched.
    disk_time_scale: Optional[float] = 4.0

    #: Chaos mode: name of a built-in fault profile (see
    #: ``repro.faults.plan.PROFILES``), or None for a fault-free run.
    fault_profile: Optional[str] = None

    #: Seed for the fault decision streams (independent of ``system.seed``
    #: so one workload can be replayed under many fault sequences).
    fault_seed: int = 7

    #: Chaos mode, literal form: a full :class:`FaultPlan` value (the
    #: chaos fuzzer runs *generated* plans that exist in no profile
    #: table).  Mutually exclusive with ``fault_profile``; the plan's own
    #: seed is used as-is (``fault_seed`` is ignored).
    fault_plan: Optional[FaultPlan] = None

    #: AutoTuner provenance (see :mod:`repro.registry.tuner`): when the
    #: speculation tunables in ``system.spechint`` were proposed from the
    #: run registry, this records where they came from (source run ids,
    #: ranking basis, the chosen parameter values) so the tuned run is
    #: reproducible from the record alone.  None for hand-picked configs.
    tuning_provenance: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.app not in ALL_APPS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {ALL_APPS}"
            )
        if self.fault_profile is not None and self.fault_plan is not None:
            raise ValueError(
                "fault_profile and fault_plan are mutually exclusive: "
                "name a built-in profile or supply a literal plan, not both"
            )
        if self.fault_profile is not None:
            profile(self.fault_profile)  # validate the name early

    def resolved_fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan for this run, or None when fault-free.

        The ``none`` profile (and an inactive literal plan) also resolve
        to None so ``--chaos none`` keeps the event stream bit-identical
        to a run without the flag.
        """
        if self.fault_plan is not None:
            return self.fault_plan if self.fault_plan.active else None
        if self.fault_profile is None:
            return None
        plan = profile(self.fault_profile, seed=self.fault_seed)
        return plan if plan.active else None

    def resolved_system(self) -> SystemConfig:
        """System config with cache size and disk time scale resolved.

        A fault plan that kills a disk permanently forces redundancy on: a
        plain striped array cannot survive it, so the array is switched to
        rotating parity with at least one hot spare unless the caller
        already configured redundancy explicitly.
        """
        system = self.system
        if self.cache_paper_mb is not None:
            cache = dataclasses.replace(
                system.cache,
                capacity_blocks=scaled_cache_blocks(self.cache_paper_mb),
            )
            system = system.replace(cache=cache)
        if self.disk_time_scale is not None:
            from repro.params import DiskParams

            system = system.replace(disk=DiskParams.scaled(self.disk_time_scale))
        plan = self.resolved_fault_plan()
        if (
            plan is not None
            and plan.permanent_death
            and system.array.redundancy == "none"
        ):
            array = dataclasses.replace(
                system.array,
                redundancy="parity",
                hot_spares=max(1, system.array.hot_spares),
            )
            system = system.replace(array=array)
        return system

    def with_(self, **kwargs: object) -> "ExperimentConfig":
        """Copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)
