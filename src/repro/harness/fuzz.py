"""The chaos-fuzzing engine: generated fault schedules, monitored cells.

A fuzz *cell* is the differential pair the PR 2 oracle established —
spec-off and spec-on runs of one app on one seed — but under a
*generated* :class:`~repro.faults.plan.FaultPlan` instead of a built-in
profile, and judged by the full invariant-monitor suite
(:mod:`repro.harness.invariants`) instead of output identity alone.
Every cell:

1. reconstructs its :class:`~repro.faults.generate.FuzzCase` from JSON
   (cells cross the supervised worker pool as plain payloads);
2. runs both variants, capturing the live system through the runner's
   observer hook so monitors can inspect audit tables, the hint-lifecycle
   ledger and the TIP queue even when the run escaped with an exception;
3. evaluates every monitor and returns the violations plus a canonical
   *cell digest* over outputs, demand-read traces, cycle counts and
   escapes — two campaigns with the same seed must produce identical
   digests whether they ran serially or on ``--jobs N`` workers, and the
   benchmark guard (``benchmarks/bench_fuzz_throughput.py``) pins that.

A campaign (:func:`run_fuzz`) fans cells over
:func:`~repro.harness.parallel.run_cells_parallel`, so crash/hang
quarantine, per-worker partial checkpoints, and graceful serial
degradation all apply; a quarantined fuzz cell surfaces as a
``supervisor`` violation, never silently.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FuzzError
from repro.faults.generate import (
    CoverageLedger,
    FaultPlanGenerator,
    FuzzCase,
    case_dimensions,
    validate_spec_overrides,
)
from repro.harness.config import ALL_APPS, ExperimentConfig, Variant
from repro.harness.invariants import (
    DEFAULT_MONITORS,
    CellObservation,
    InvariantMonitor,
    VariantObservation,
    Violation,
    check_all,
)
from repro.harness.runner import (
    add_system_observer,
    remove_system_observer,
    run_experiment_with_system,
)
from repro.params import SystemConfig

#: Default workload scale for fuzz cells (small enough that a 50-cell
#: budget stays interactive, large enough that speculation engages).
DEFAULT_FUZZ_SCALE = 0.25


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def case_config(
    case: FuzzCase, variant: Variant, workload_scale: float
) -> ExperimentConfig:
    """The experiment configuration one fuzz-cell variant runs under."""
    if case.app not in ALL_APPS:
        raise FuzzError(
            f"fuzz case app {case.app!r} unknown; expected one of {ALL_APPS}"
        )
    validate_spec_overrides(case.spec_overrides)
    system = SystemConfig()
    if case.spec_overrides:
        system = system.replace(spechint=dataclasses.replace(
            system.spechint, **case.spec_overrides
        ))
    return ExperimentConfig(
        app=case.app,
        variant=variant,
        system=system,
        workload_scale=workload_scale,
        fault_plan=case.plan,
    )


def observe_variant(cfg: ExperimentConfig) -> VariantObservation:
    """Run one variant, capturing the live system and any escape.

    The system is grabbed through the runner's observer hook *before* the
    kernel starts, so monitors see post-mortem state (audit tables, the
    lifecycle ledger) even when the run raised.  Typed and untyped
    escapes are both captured as data — the typed-errors monitor judges
    them; only exits (KeyboardInterrupt, SystemExit) propagate.
    """
    vobs = VariantObservation(variant=cfg.variant.value)

    def _observer(system: object) -> None:
        vobs.system = system
        vobs.clock_samples.append(("built", system.clock.now))  # type: ignore[attr-defined]

    add_system_observer(_observer)
    try:
        result, system = run_experiment_with_system(cfg)
        vobs.result = result
        vobs.system = system
    except Exception as exc:
        vobs.error = exc
    finally:
        remove_system_observer(_observer)
    if vobs.system is not None:
        vobs.clock_samples.append(
            ("end", vobs.system.clock.now)  # type: ignore[attr-defined]
        )
    return vobs


@dataclass
class FuzzCellResult:
    """Outcome of one fuzz cell, JSON-round-trippable for the pool."""

    case: FuzzCase
    violations: List[Violation] = field(default_factory=list)
    digest: str = ""
    cycles: Dict[str, int] = field(default_factory=dict)
    escapes: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Registry identity keys (see :mod:`repro.registry.fingerprint`),
    #: stamped by :func:`run_fuzz_case` from the cell's resolved config.
    params_digest: str = ""
    seed: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def key(self) -> str:
        return self.case.key

    @property
    def dimensions(self) -> List[str]:
        return case_dimensions(self.case.plan, self.case.spec_overrides)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "case": self.case.to_jsonable(),
            "violations": [v.to_jsonable() for v in self.violations],
            "digest": self.digest,
            "cycles": dict(self.cycles),
            "escapes": dict(self.escapes),
            "params_digest": self.params_digest,
            "seed": self.seed,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "FuzzCellResult":
        return cls(
            case=FuzzCase.from_jsonable(data["case"]),
            violations=[
                Violation.from_jsonable(v)  # type: ignore[arg-type]
                for v in data.get("violations", ())
            ],
            digest=str(data.get("digest", "")),
            cycles={str(k): int(v)  # type: ignore[call-overload]
                    for k, v in dict(data.get("cycles", {})).items()},
            escapes={str(k): (str(v) if v is not None else None)
                     for k, v in dict(data.get("escapes", {})).items()},
            params_digest=str(data.get("params_digest", "")),
            seed=int(data.get("seed", 0)),  # type: ignore[call-overload]
        )


def _cell_digest(
    case: FuzzCase,
    observations: Dict[str, VariantObservation],
    violations: List[Violation],
) -> str:
    """Canonical digest of everything deterministic about this cell."""
    variants: Dict[str, object] = {}
    for name, vobs in sorted(observations.items()):
        entry: Dict[str, object] = {
            "escape": type(vobs.error).__name__ if vobs.error else None,
        }
        if vobs.result is not None:
            entry["output_sha"] = _sha(vobs.result.output.hex())
            entry["trace_sha"] = _sha(repr(vobs.result.read_trace))
            entry["cycles"] = vobs.result.cycles
            entry["fault_events"] = vobs.result.fault_events()
        variants[name] = entry
    payload = {
        "key": case.key,
        "plan": case.plan.to_jsonable(),
        "spec_overrides": dict(sorted(case.spec_overrides.items())),
        "variants": variants,
        "violations": sorted(v.monitor for v in violations),
    }
    return _sha(json.dumps(payload, sort_keys=True))


def run_fuzz_case(
    case: FuzzCase,
    workload_scale: float = DEFAULT_FUZZ_SCALE,
    monitors: Tuple[InvariantMonitor, ...] = DEFAULT_MONITORS,
) -> FuzzCellResult:
    """Run one cell (both variants) and judge it with every monitor."""
    from repro.registry.fingerprint import params_digest as _params_digest

    observations: Dict[str, VariantObservation] = {}
    identity_digest = ""
    identity_seed = 0
    for variant in (Variant.ORIGINAL, Variant.SPECULATING):
        cfg = case_config(case, variant, workload_scale)
        # params_digest excludes the variant axis, so either variant's
        # config yields the same cell identity.
        identity_digest = _params_digest(cfg)
        identity_seed = cfg.system.seed
        observations[variant.value] = observe_variant(cfg)
    obs = CellObservation(
        app=case.app,
        plan=case.plan,
        spec_overrides=dict(case.spec_overrides),
        variants=observations,
    )
    violations = check_all(obs, monitors)
    return FuzzCellResult(
        case=case,
        violations=violations,
        digest=_cell_digest(case, observations, violations),
        cycles={
            name: vobs.result.cycles
            for name, vobs in sorted(observations.items())
            if vobs.result is not None
        },
        escapes={
            name: (type(vobs.error).__name__ if vobs.error else None)
            for name, vobs in sorted(observations.items())
        },
        params_digest=identity_digest,
        seed=identity_seed,
    )


def run_fuzz_cell_payload(
    case_json: Dict[str, object], workload_scale: float
) -> Dict[str, object]:
    """Module-level cell runner (pickled by reference into workers)."""
    case = FuzzCase.from_jsonable(case_json)
    return run_fuzz_case(case, workload_scale=workload_scale).to_jsonable()


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    seed: int
    budget: int
    workload_scale: float
    ledger: CoverageLedger
    cells: List[FuzzCellResult] = field(default_factory=list)
    quarantined: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures() and not self.quarantined

    def failures(self) -> List[FuzzCellResult]:
        return [cell for cell in self.cells if not cell.passed]

    @property
    def digest(self) -> str:
        """Campaign digest: identical for serial and parallel runs."""
        lines = sorted(f"{cell.key}:{cell.digest}" for cell in self.cells)
        return _sha("\n".join(lines))

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "workload_scale": self.workload_scale,
            "passed": self.passed,
            "digest": self.digest,
            "coverage": self.ledger.to_jsonable(),
            "cells": [cell.to_jsonable() for cell in self.cells],
            "quarantined": dict(self.quarantined),
        }

    def summary(self) -> str:
        failures = self.failures()
        verdict = "PASS" if self.passed else "FAIL"
        extra = ""
        if self.quarantined:
            extra = f", {len(self.quarantined)} quarantined"
        return (f"fuzz: {verdict} ({len(self.cells) - len(failures)}/"
                f"{len(self.cells)} cells clean{extra}; "
                f"digest {self.digest})")


def run_fuzz(
    budget: int,
    seed: int = 7,
    apps: Sequence[str] = ("agrep",),
    jobs: int = 1,
    workload_scale: float = DEFAULT_FUZZ_SCALE,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[str, bool], None]] = None,
    on_event: Optional[Callable[[str], None]] = None,
    registry_path: Optional[str] = None,
) -> FuzzReport:
    """One fuzz campaign: ``budget`` generated cells over the pool.

    Deterministic in ``(budget, seed, apps, workload_scale)``: the
    coverage ledger, every cell digest, and the campaign digest are
    identical whether cells ran serially or sharded across workers.

    With ``registry_path`` set, a ``fuzz-campaign`` group record plus a
    ``fuzz-case`` record per cell (carrying its invariant-monitor
    verdicts) land in the persistent run registry.
    """
    for app in apps:
        if app not in ALL_APPS:
            raise FuzzError(
                f"unknown fuzz app {app!r}; expected one of {ALL_APPS}"
            )
    from repro.harness.parallel import run_cells_parallel

    generator = FaultPlanGenerator(seed, apps=apps)
    cases = generator.cases(budget)
    ledger = CoverageLedger()
    for case in cases:
        ledger.note(case)

    registry_meta: Optional[Dict[str, object]] = None
    if registry_path is not None:
        registry_meta = _fuzz_registry_meta(
            registry_path, budget, seed, apps, workload_scale,
        )

    cells = [
        (case.key, run_fuzz_cell_payload,
         (case.to_jsonable(), workload_scale))
        for case in cases
    ]
    outcome = run_cells_parallel(
        cells, jobs=jobs, checkpoint_path=checkpoint_path,
        identity="fuzz", resume=resume, progress=progress,
        on_event=on_event,
        registry_path=registry_path, registry_meta=registry_meta,
    )

    report = FuzzReport(
        seed=seed, budget=budget, workload_scale=workload_scale,
        ledger=ledger,
    )
    for case in cases:  # generation order, not arrival order
        payload = outcome.results.get(case.key)
        if payload is not None:
            report.cells.append(FuzzCellResult.from_jsonable(payload))
            continue
        record = outcome.quarantined.get(case.key, {})
        report.quarantined[case.key] = dict(record)
        failures = record.get("failures", [])
        report.cells.append(FuzzCellResult(
            case=case,
            violations=[Violation(
                "supervisor",
                f"cell quarantined after {len(failures)} supervisor "  # type: ignore[arg-type]
                f"failure(s) (crash/hang); see checkpoint record",
                {"failures": len(failures)},  # type: ignore[arg-type]
            )],
            digest="quarantined",
        ))
    return report


def _fuzz_registry_meta(
    registry_path: str,
    budget: int,
    seed: int,
    apps: Sequence[str],
    workload_scale: float,
) -> Dict[str, object]:
    """Write the campaign's group record; returns the cells' context."""
    from repro.registry.fingerprint import code_version
    from repro.registry.record import RunRecord
    from repro.registry.store import RunRegistry

    version = code_version()
    parent = RunRecord(
        kind="fuzz-campaign",
        code_version=version,
        meta={
            "budget": budget,
            "fuzz_seed": seed,
            "apps": list(apps),
            "workload_scale": workload_scale,
        },
    )
    registry = RunRegistry.open(registry_path)
    try:
        parent_id = registry.record(parent)
        registry.compact()
    finally:
        registry.close()
    return {"parent_id": parent_id, "code_version": version}


def replay_case(
    case: FuzzCase, workload_scale: float = DEFAULT_FUZZ_SCALE
) -> FuzzCellResult:
    """Re-run one case (e.g. a corpus reproducer) under the monitors."""
    return run_fuzz_case(case, workload_scale=workload_scale)


__all__ = [
    "DEFAULT_FUZZ_SCALE",
    "FuzzCellResult",
    "FuzzReport",
    "case_config",
    "observe_variant",
    "replay_case",
    "run_fuzz",
    "run_fuzz_case",
    "run_fuzz_cell_payload",
]
