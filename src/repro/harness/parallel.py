"""Parallel sweep engine: shard sealed simulation cells across workers.

Every sweep cell (one ``(sweep point, app, variant)`` triple), oracle
cell, and chaos cell is a sealed deterministic simulation — independent
seeding means any subset can run anywhere, in any order, and merge into
a result set byte-identical to a serial run.  That is exactly the "cell
as the unit of parallelism" model of Simics' threading commands, and it
makes the cells safe to shard across processes.

This module is the policy layer above :mod:`repro.harness.supervisor`:

* it turns sweep / oracle / chaos grids into picklable cell specs whose
  runners return ``RunResult.to_jsonable()`` payloads;
* it integrates the crash-safe :class:`SweepCheckpoint`: the parent
  records every completed cell, workers keep per-slot partial
  checkpoints (``<path>.worker-<slot>``), and both parent- and
  worker-SIGKILLs resume without recomputation because the parent merges
  partials back into the main checkpoint atomically on the next run;
* it degrades gracefully: ``jobs <= 1`` or a pool that fails to start
  runs the exact serial path, same results, same checkpoint format.

The determinism guard (tests + ``benchmarks/bench_parallel_sweep.py``)
asserts the parallel result set is byte-identical to serial across all
chaos profiles.
"""

from __future__ import annotations

import contextlib
import glob
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CheckpointError, QuarantinedCell
from repro.harness.checkpoint import SweepCheckpoint, flush_on_signals
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.supervisor import (
    CellSpec,
    Supervisor,
    SupervisorConfig,
    SupervisorOutcome,
    SupervisorStats,
)

#: Payload a cell runner returns: a JSON-safe dict (RunResult or oracle
#: cell serialization) that crosses the result pipe verbatim.
Payload = Dict[str, object]


# ---------------------------------------------------------------------------
# Cell runners (module-level: pickled by reference into workers)
# ---------------------------------------------------------------------------

def run_sweep_cell_payload(
    kind: str,
    point: object,
    app: str,
    variant_value: str,
    workload_scale: float,
) -> Payload:
    """One sweep cell, serialized for the result pipe."""
    from repro.harness.experiments import run_sweep_cell

    result = run_sweep_cell(kind, point, app, Variant(variant_value),  # type: ignore[arg-type]
                            workload_scale)
    return result.to_jsonable()


def run_chaos_cell_payload(
    app: str,
    variant_value: str,
    profile: Optional[str],
    workload_scale: float,
    fault_seed: int,
) -> Payload:
    """One chaos-matrix cell (app x variant under one fault profile)."""
    from repro.harness.runner import run_experiment

    result = run_experiment(ExperimentConfig(
        app=app,
        variant=Variant(variant_value),
        workload_scale=workload_scale,
        fault_profile=profile,
        fault_seed=fault_seed,
    ))
    return result.to_jsonable()


def run_oracle_cell_payload(
    app: str,
    profile: Optional[str],
    workload_scale: float,
    fault_seed: int,
    analysis_optimize: bool,
    trace_dir: Optional[str],
    system: Optional[object] = None,
) -> Payload:
    """One differential-oracle cell, both variants serialized.

    ``system`` is an optional :class:`~repro.params.SystemConfig` — a
    plain frozen dataclass, so it ships to the worker by value.
    """
    from repro.harness.oracle import run_oracle_cell

    cell = run_oracle_cell(
        app, profile, workload_scale=workload_scale, fault_seed=fault_seed,
        analysis_optimize=analysis_optimize, trace_dir=trace_dir,
        system=system,  # type: ignore[arg-type]
    )
    return cell.to_payload()


def sweep_parallel_cells(
    kind: str, workload_scale: float = 1.0
) -> List[CellSpec]:
    """Picklable cell specs of one sweep (same keys as the serial path)."""
    from repro.harness.config import APPS
    from repro.harness.experiments import SWEEP_POINTS, point_label

    if kind not in SWEEP_POINTS:
        raise ValueError(
            f"unknown sweep kind {kind!r}; expected one of {sorted(SWEEP_POINTS)}"
        )
    cells: List[CellSpec] = []
    for point in SWEEP_POINTS[kind]:
        for app in APPS:
            for variant in tuple(Variant):
                key = f"{kind}={point_label(point)}/{app}/{variant.value}"
                cells.append((key, run_sweep_cell_payload,
                              (kind, point, app, variant.value,
                               workload_scale)))
    return cells


def chaos_parallel_cells(
    apps: Tuple[str, ...],
    profiles: Tuple[Optional[str], ...],
    variants: Tuple[Variant, ...] = tuple(Variant),
    workload_scale: float = 1.0,
    fault_seed: int = 7,
) -> List[CellSpec]:
    """Cell specs of an app x variant x chaos-profile matrix."""
    cells: List[CellSpec] = []
    for profile in profiles:
        for app in apps:
            for variant in variants:
                key = f"chaos={profile or 'fault-free'}/{app}/{variant.value}"
                cells.append((key, run_chaos_cell_payload,
                              (app, variant.value, profile, workload_scale,
                               fault_seed)))
    return cells


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def _partial_paths(checkpoint_path: str) -> List[str]:
    return sorted(glob.glob(glob.escape(checkpoint_path) + ".worker-*"))


def merge_worker_partials(
    checkpoint: SweepCheckpoint,
    on_event: Optional[Callable[[str], None]] = None,
) -> int:
    """Fold per-worker partial checkpoints into the main one.

    Cells recorded by workers that outlived (or died with) a killed
    parent are adopted, the merged state is flushed atomically, and the
    partial files are deleted.  Idempotent: re-running after a crash
    mid-merge re-adopts the same deterministic cells.  Returns the
    number of cells adopted.
    """
    adopted = 0
    partials = _partial_paths(checkpoint.path)
    for path in partials:
        try:
            partial = SweepCheckpoint.load(path, checkpoint.identity)
        except CheckpointError as exc:
            if on_event is not None:
                on_event(f"ignoring stale partial {path!r}: {exc}")
            continue
        adopted += checkpoint.merge_from(partial)
    if adopted:
        checkpoint.flush()
    for path in partials:
        with contextlib.suppress(OSError):
            os.unlink(path)
    return adopted


def run_cells_parallel(
    cells: List[CellSpec],
    jobs: int,
    checkpoint_path: Optional[str] = None,
    identity: str = "sweep",
    resume: bool = False,
    progress: Optional[Callable[[str, bool], None]] = None,
    config: Optional[SupervisorConfig] = None,
    on_event: Optional[Callable[[str], None]] = None,
    registry_path: Optional[str] = None,
    registry_meta: Optional[Dict[str, object]] = None,
) -> SupervisorOutcome:
    """Run cell specs under the supervised pool, checkpointing results.

    The parallel counterpart of :func:`repro.harness.checkpoint.run_cells`
    — same checkpoint file, same identity rules, same resume semantics —
    plus supervision: crashed and hung cells are rescheduled, poisoned
    cells are quarantined instead of sinking the sweep, and SIGINT /
    SIGTERM flush the checkpoint before exiting.  With ``jobs <= 1`` (or
    when the worker pool cannot start) the cells run serially in-process
    with identical results.

    With ``registry_path`` set, every completed cell also lands in the
    persistent run registry: workers append records to per-slot sidecar
    ledgers (``<path>.reg-worker-<slot>``) before reporting, the parent
    merges the sidecars and re-records every delivered payload
    (idempotent, content-addressed), and the registry is compacted to
    its canonical byte form — so a serial run and a ``--jobs N`` run of
    the same cells produce byte-identical registries.  ``registry_meta``
    carries the record context (kind, parent run id).
    """
    if on_event is None:
        def on_event(message: str) -> None:
            print(f"  [supervisor] {message}", file=sys.stderr)

    config = config or SupervisorConfig()
    if config.jobs != jobs:
        import dataclasses

        config = dataclasses.replace(config, jobs=jobs)

    checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint_path is not None:
        if resume and os.path.exists(checkpoint_path):
            checkpoint = SweepCheckpoint.load(checkpoint_path, identity)
        else:
            checkpoint = SweepCheckpoint(checkpoint_path, identity)
            checkpoint.flush()
            # A fresh (non-resume) start owns the namespace: stale
            # partials from an abandoned run must not leak in later.
            for path in _partial_paths(checkpoint_path):
                with contextlib.suppress(OSError):
                    os.unlink(path)
        merge_worker_partials(checkpoint, on_event=on_event)

    if registry_path is not None and not resume:
        # Same namespace rule for registry sidecars.  The registry file
        # itself is an append-forever ledger and is never cleared.
        for path in _registry_sidecar_paths(registry_path):
            with contextlib.suppress(OSError):
                os.unlink(path)

    # Restore already-completed cells before any worker spawns.
    restored: Dict[str, Payload] = {}
    remaining: List[CellSpec] = []
    for spec in cells:
        key = spec[0]
        if checkpoint is not None and key in checkpoint:
            restored[key] = checkpoint.payload(key)
            if progress is not None:
                progress(key, True)
        else:
            remaining.append(spec)

    guard = (
        flush_on_signals(checkpoint.flush)
        if checkpoint is not None
        else contextlib.nullcontext()
    )
    with guard:
        if jobs <= 1:
            outcome = _run_cells_serial(remaining, checkpoint, progress,
                                        config)
        else:
            outcome = _run_cells_supervised(remaining, checkpoint, progress,
                                            config, identity, on_event,
                                            registry_path, registry_meta)

    outcome.results.update(restored)
    outcome.stats.cells_restored = len(restored)
    if checkpoint is not None:
        merge_worker_partials(checkpoint, on_event=on_event)
    if registry_path is not None:
        record_results_in_registry(registry_path, outcome.results,
                                   registry_meta, on_event=on_event)
    return outcome


def _registry_sidecar_paths(registry_path: str) -> List[str]:
    return sorted(glob.glob(glob.escape(registry_path) + ".reg-worker-*"))


def record_results_in_registry(
    registry_path: str,
    results: Dict[str, Payload],
    registry_meta: Optional[Dict[str, object]],
    on_event: Optional[Callable[[str], None]] = None,
) -> None:
    """Fold a cell-result set into the persistent run registry.

    Worker sidecar ledgers are merged first (they may hold cells whose
    parent died before delivery), then every delivered payload is
    recorded directly — idempotent because records are content-addressed
    — and the store is compacted to canonical bytes.
    """
    from repro.registry.recorder import record_payload
    from repro.registry.store import RunRegistry, merge_worker_sidecars

    try:
        registry = RunRegistry.open(registry_path)
        try:
            merge_worker_sidecars(registry, registry_path)
            for key in sorted(results):
                record_payload(registry, key, results[key], registry_meta,
                               durable=False)
            registry.compact()
        finally:
            registry.close()
    except Exception as exc:
        if on_event is not None:
            on_event(f"run registry update failed ({exc!r}); "
                     f"results and checkpoint are unaffected")


def _run_cells_supervised(
    cells: List[CellSpec],
    checkpoint: Optional[SweepCheckpoint],
    progress: Optional[Callable[[str, bool], None]],
    config: SupervisorConfig,
    identity: str,
    on_event: Callable[[str], None],
    registry_path: Optional[str] = None,
    registry_meta: Optional[Dict[str, object]] = None,
) -> SupervisorOutcome:
    def on_result(key: str, payload: Payload) -> None:
        if checkpoint is not None:
            checkpoint.record_payload(key, payload)
        if progress is not None:
            progress(key, False)

    def on_quarantine(key: str, record: Dict[str, object]) -> None:
        if checkpoint is not None:
            checkpoint.record_quarantine(key, record)

    partial_path_for: Optional[Callable[[int], str]] = None
    if checkpoint is not None:
        base = checkpoint.path

        def _partial_for(slot: int) -> str:
            return f"{base}.worker-{slot}"

        partial_path_for = _partial_for

    registry_sidecar_for: Optional[Callable[[int], str]] = None
    if registry_path is not None:
        from repro.registry.store import sidecar_path

        def _sidecar_for(slot: int) -> str:
            return sidecar_path(registry_path, slot)

        registry_sidecar_for = _sidecar_for

    supervisor = Supervisor(
        cells, config, identity=identity,
        partial_path_for=partial_path_for,
        on_result=on_result, on_quarantine=on_quarantine, on_event=on_event,
        registry_sidecar_for=registry_sidecar_for,
        registry_ctx=dict(registry_meta) if registry_meta else None,
    )
    try:
        supervisor.start()
    except Exception as exc:  # pool startup failure: degrade, don't die
        on_event(f"worker pool failed to start ({exc!r}); "
                 f"degrading to serial execution")
        return _run_cells_serial(cells, checkpoint, progress, config)
    return supervisor.run()


def _run_cells_serial(
    cells: List[CellSpec],
    checkpoint: Optional[SweepCheckpoint],
    progress: Optional[Callable[[str, bool], None]],
    config: SupervisorConfig,
) -> SupervisorOutcome:
    """The graceful-degradation path: same cells, same checkpointing."""
    outcome = SupervisorOutcome(
        stats=SupervisorStats(mode="serial", jobs=1)
    )
    for key, fn, args in cells:
        payload = fn(*args)
        outcome.results[key] = payload
        outcome.stats.cells_completed += 1
        if checkpoint is not None:
            checkpoint.record_payload(key, payload)
        if progress is not None:
            progress(key, False)
    return outcome


def require_complete(outcome: SupervisorOutcome, what: str = "sweep") -> None:
    """Raise typed :class:`QuarantinedCell` when any cell was poisoned.

    Called by consumers that need the *complete* result set (matrix
    assembly, report formatting).  The message carries each quarantined
    cell's final traceback tail so the failure is diagnosable from the
    one-line CLI error; the full records live in the checkpoint.
    """
    if not outcome.quarantined:
        return
    lines = []
    for key, record in sorted(outcome.quarantined.items()):
        tb = str(record.get("traceback", "")).strip().splitlines()
        last = tb[-1] if tb else "unknown failure"
        failures = record.get("failures", [])
        lines.append(f"{key!r} ({len(failures)} failures; last: {last})")
    raise QuarantinedCell(
        f"{what} completed with {len(outcome.quarantined)} quarantined "
        f"cell(s): " + "; ".join(lines)
    )
