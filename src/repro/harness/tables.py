"""Formatters producing the paper's tables from run results.

Each function renders one table as text with the paper's published value
next to the measured one, so benchmark output (and EXPERIMENTS.md) can be
read without the paper at hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.harness import paper
from repro.harness.config import Variant
from repro.harness.results import RunResult

Matrix = Dict[str, Dict[str, RunResult]]

APP_LABEL = {"agrep": "Agrep", "gnuld": "Gnuld", "xds": "XDataSlice"}
VARIANTS = [v.value for v in Variant]


def _hr(width: int = 86) -> str:
    return "-" * width


def format_fig3(matrix: Matrix) -> str:
    """Figure 3: elapsed time and % improvement per app and variant."""
    lines = [
        "Figure 3 - performance improvement (elapsed seconds, % vs original)",
        _hr(),
        f"{'':12} {'original':>12} {'speculating':>22} {'manual':>22}",
    ]
    for app, results in matrix.items():
        original = results["original"]
        spec = results["speculating"]
        manual = results["manual"]
        p_spec, p_manual = paper.FIG3_IMPROVEMENT[app]
        lines.append(
            f"{APP_LABEL[app]:12} {original.elapsed_s:>11.2f}s "
            f"{spec.elapsed_s:>8.2f}s ({spec.improvement_over(original):5.1f}%)"
            f" [paper {p_spec:.0f}%]"
            f" {manual.elapsed_s:>6.2f}s ({manual.improvement_over(original):5.1f}%)"
            f" [paper {p_manual:.0f}%]"
        )
    return "\n".join(lines)


def format_fig4(overheads: Mapping[str, float]) -> str:
    """Figure 4: runtime overhead with TIP configured to ignore hints."""
    lines = [
        "Figure 4 - overhead of supporting speculation (hints ignored)",
        _hr(),
        f"{'':12} {'measured':>10}   paper bound: <= "
        f"{paper.FIG4_MAX_OVERHEAD_PCT:.0f}%",
    ]
    for app, overhead in overheads.items():
        lines.append(f"{APP_LABEL[app]:12} {overhead:>9.2f}%")
    return "\n".join(lines)


def format_table3(reports: Iterable[object]) -> str:
    """Table 3: transformation statistics."""
    lines = [
        "Table 3 - transformed application statistics",
        _hr(),
        f"{'':12} {'mod time':>10} {'size':>12} {'increase':>10}"
        f"   (paper: time / size / increase)",
    ]
    for report in reports:
        app = report.binary_name.replace("-manual", "")
        key = {"agrep": "agrep", "gnuld": "gnuld", "xds": "xds"}[app]
        p_time, p_kb, p_pct = paper.TABLE3[key]
        lines.append(
            f"{APP_LABEL[key]:12} {report.modification_time_s:>9.3f}s "
            f"{report.transformed_size_bytes / 1024:>9,.0f} KB "
            f"{report.size_increase_pct:>8.0f}%"
            f"   ({p_time:.0f}s / {p_kb:,} KB / {p_pct:.0f}%)"
        )
    return "\n".join(lines)


def format_table4(matrix: Matrix) -> str:
    """Table 4: hinting statistics."""
    lines = [
        "Table 4 - hinting statistics",
        _hr(100),
        f"{'':12} {'reads':>7} {'%calls':>7} {'%blocks':>8} {'%bytes':>7} "
        f"{'inaccurate':>11}   paper(spec): %calls/%blocks/%bytes/inacc",
    ]
    for app, results in matrix.items():
        spec = results["speculating"]
        manual = results["manual"]
        p = paper.TABLE4_SPECULATING[app]
        lines.append(
            f"{APP_LABEL[app]:12} {spec.read_calls:>7} "
            f"{spec.pct_calls_hinted:>6.1f}% {spec.pct_blocks_hinted:>7.1f}% "
            f"{spec.pct_bytes_hinted:>6.1f}% {spec.inaccurate_hints:>11}"
            f"   ({p[0]:.1f}% / {p[1]:.1f}% / {p[2]:.1f}% / {p[3]})"
        )
        lines.append(
            f"{'  manual':12} {manual.read_calls:>7} "
            f"{manual.pct_calls_hinted:>6.1f}%"
            f"{'':>27}   (paper manual: "
            f"{paper.TABLE4_MANUAL_PCT_CALLS[app]:.1f}% of calls)"
        )
    return "\n".join(lines)


def format_table5(matrix: Matrix) -> str:
    """Table 5: prefetching and caching statistics."""
    lines = [
        "Table 5 - prefetching and caching statistics",
        _hr(100),
        f"{'':24} {'cache reads':>11} {'prefetched':>10} {'fully':>9} "
        f"{'partially':>10} {'unused':>9} {'reuses':>8}",
    ]
    for app, results in matrix.items():
        for variant in VARIANTS:
            r = results[variant]
            prefetched = max(1, r.prefetched_blocks)
            p = paper.TABLE5[app][variant]
            lines.append(
                f"{APP_LABEL[app]:11} {variant:12} {r.cache_block_reads:>11} "
                f"{r.prefetched_blocks:>10} "
                f"{100.0 * r.prefetched_fully / prefetched:>8.1f}% "
                f"{100.0 * r.prefetched_partially / prefetched:>9.1f}% "
                f"{100.0 * r.prefetched_unused / prefetched:>8.1f}% "
                f"{r.cache_block_reuses:>8}"
            )
            lines.append(
                f"{'':24} paper: {p[0]:>11,} {p[1]:>10,} {p[2]:>8.1f}% "
                f"{p[3]:>9.1f}% {p[4]:>8.1f}% {p[5]:>8,}"
            )
    return "\n".join(lines)


def format_table6(matrix: Matrix) -> str:
    """Table 6: performance side-effects of speculation."""
    lines = [
        "Table 6 - performance side-effects",
        _hr(),
        f"{'':24} {'footprint':>10} {'reclaims':>9} {'faults':>7} {'sigs':>5}"
        f"   (paper: KB/reclaims/faults/sigs)",
    ]
    for app, results in matrix.items():
        for variant in VARIANTS:
            r = results[variant]
            p = paper.TABLE6[app][variant]
            sigs = r.spec_signals if variant == "speculating" else 0
            lines.append(
                f"{APP_LABEL[app]:11} {variant:12} "
                f"{r.footprint_bytes // 1024:>8} KB {r.page_reclaims:>9} "
                f"{r.page_faults:>7} {sigs:>5}"
                f"   ({p[0]:,} KB / {p[1]:,} / {p[2]} / {p[3]})"
            )
    return "\n".join(lines)


def format_table7(sweep: Mapping[float, Matrix]) -> str:
    """Table 7: elapsed time as the file cache size is varied."""
    lines = [
        "Table 7 - elapsed time vs file cache size "
        "(paper MB, scaled ~8x smaller here; our large-cache point is "
        "32 MB because at 64 MB the scaled cache would exceed the scaled "
        "datasets entirely — compared against the paper's 64 MB row)",
        _hr(100),
    ]
    paper_key = {6: 6, 12: 12, 32: 64, 64: 64}
    apps = list(next(iter(sweep.values())).keys())
    for app in apps:
        lines.append(APP_LABEL[app])
        for mb, matrix in sweep.items():
            results = matrix[app]
            original = results["original"]
            spec = results["speculating"]
            manual = results["manual"]
            p = paper.TABLE7[app][paper_key[int(mb)]]
            lines.append(
                f"  {int(mb):>3} MB  orig {original.elapsed_s:>7.2f}s  "
                f"spec {spec.elapsed_s:>6.2f}s "
                f"({spec.improvement_over(original):5.1f}%)  "
                f"manual {manual.elapsed_s:>6.2f}s "
                f"({manual.improvement_over(original):5.1f}%)"
                f"   paper: {p[0]:.1f}/{p[1]:.1f}/{p[2]:.1f}s"
            )
    return "\n".join(lines)


def format_table8(sweep: Mapping[int, Matrix]) -> str:
    """Table 8: elapsed time of the original applications vs disk count."""
    lines = [
        "Table 8 - elapsed time of original applications vs number of disks",
        _hr(),
        f"{'':12}" + "".join(f"{n:>10}d" for n in sweep),
    ]
    for app in next(iter(sweep.values())).keys():
        measured = "".join(
            f"{sweep[n][app]['original'].elapsed_s:>10.2f}s" for n in sweep
        )
        papers = "".join(
            f"{paper.TABLE8[app][n]:>10.1f}s" for n in sweep
            if n in paper.TABLE8[app]
        )
        lines.append(f"{APP_LABEL[app]:12}{measured}")
        lines.append(f"{'  paper':12}{papers}")
    return "\n".join(lines)


def format_degraded_sweep(sweep: Mapping[str, Matrix]) -> str:
    """Degraded-mode extension: slowdown and recovery work per profile.

    One row per (app, fault regime): elapsed time and slowdown vs the
    healthy (``none``) baseline of the same app/variant, plus the degraded
    work performed (reconstruction reads, rebuild completion, hedges, shed
    prefetches).
    """
    lines = [
        "Degraded-mode sweep - elapsed time and recovery work per fault regime",
        _hr(100),
        f"{'':14}{'regime':>14} {'orig':>9} {'spec':>9} "
        f"{'slowdown':>9} {'recon':>7} {'hedgeW':>7} {'shed':>6}  rebuild",
    ]
    baseline = sweep.get("none")
    apps = list(next(iter(sweep.values())).keys())
    for app in apps:
        for profile, matrix in sweep.items():
            results = matrix[app]
            original = results["original"]
            spec = results["speculating"]
            slowdown = 0.0
            if baseline is not None and profile != "none":
                healthy = baseline[app]["speculating"].elapsed_s
                if healthy > 0:
                    slowdown = spec.elapsed_s / healthy
            if spec.rebuild_completed:
                done_s = spec.rebuild_completed_cycle / spec.cpu_hz
                rebuild = f"done @{done_s:.3f}s ({spec.rebuild_blocks} blk)"
            elif spec.disk_deaths:
                rebuild = "incomplete"
            else:
                rebuild = "-"
            lines.append(
                f"{APP_LABEL.get(app, app):14}{profile:>14} "
                f"{original.elapsed_s:>8.2f}s {spec.elapsed_s:>8.2f}s "
                f"{(f'{slowdown:.2f}x' if slowdown else '-'):>9} "
                f"{spec.reconstructed_blocks:>7} {spec.hedges_won:>7} "
                f"{spec.prefetches_shed_degraded:>6}  {rebuild}"
            )
    return "\n".join(lines)


def format_improvement_series(
    sweep: Mapping[object, Matrix], xlabel: str
) -> str:
    """Figures 5/6: % improvement series over a sweep variable."""
    xs = list(sweep.keys())
    lines = [f"{'':26}" + "".join(f"{x!s:>8}" for x in xs)]
    apps = list(next(iter(sweep.values())).keys())
    for app in apps:
        for variant in ("speculating", "manual"):
            series = []
            for x in xs:
                results = sweep[x][app]
                value = results[variant].improvement_over(results["original"])
                series.append(f"{value:>7.1f}%")
            lines.append(f"{APP_LABEL[app] + ' - ' + variant:26}" + "".join(series))
    return f"improvement (%) vs {xlabel}\n" + "\n".join(lines)
