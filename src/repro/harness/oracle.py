"""The differential correctness oracle.

The paper's promise is that speculative pre-execution is *transparent*:
a transformed application produces exactly the output of the original, and
demands exactly the same data in the same order — hinting changes timing,
never semantics.  This module turns the promise into an executable check:

* run each application twice on the same seed — :class:`Variant.ORIGINAL`
  (speculation off) and :class:`Variant.SPECULATING` (speculation on);
* assert byte-identical program output;
* assert identical demand-read sequences (the kernel's per-read
  ``(ino, offset, length)`` trace);
* repeat under every chaos profile, so the guarantee holds while disks
  fail, hints are corrupted, and restart storms rage.

A divergence raises (or, in collect mode, records) a typed
:class:`~repro.errors.OracleMismatch` pinpointing the first differing
element.  The CLI exposes this as ``run APP --oracle``; CI runs a smoke
subset on every push.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DataLossError, OracleMismatch
from repro.faults.plan import PROFILES
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.results import RunResult
from repro.harness.runner import run_experiment
from repro.params import SystemConfig
from repro.sim.clock import SimClock
from repro.trace.export import export_to_path
from repro.trace.tracer import Tracer

#: Chaos profiles the full oracle sweeps (None = fault-free baseline).
ORACLE_PROFILES: Tuple[Optional[str], ...] = (None,) + tuple(
    name for name in sorted(PROFILES) if name != "none"
)


def _first_output_diff(a: bytes, b: bytes) -> str:
    """Human description of the first differing output byte."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return (f"output byte {i}: original {a[i]:#04x} vs "
                    f"speculating {b[i]:#04x}")
    return f"output length: original {len(a)} vs speculating {len(b)} bytes"


def _first_trace_diff(
    a: Sequence[Tuple[int, int, int]], b: Sequence[Tuple[int, int, int]]
) -> str:
    """Human description of the first differing demand read."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return (f"demand read #{i}: original {a[i]} vs "
                    f"speculating {b[i]}")
    return (f"demand-read count: original {len(a)} vs "
            f"speculating {len(b)} calls")


@dataclass
class OracleCell:
    """Outcome of one (app, profile) differential comparison."""

    app: str
    profile: Optional[str]
    passed: bool
    detail: str = ""
    original: Optional[RunResult] = None
    speculating: Optional[RunResult] = None

    @property
    def profile_name(self) -> str:
        return self.profile or "fault-free"

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "OracleCell":
        """Rebuild a cell from a parallel worker's JSON payload."""
        cell = cls(
            app=str(payload["app"]),
            profile=(str(payload["profile"])
                     if payload.get("profile") is not None else None),
            passed=bool(payload["passed"]),
            detail=str(payload.get("detail", "")),
        )
        if "original" in payload:
            cell.original = RunResult.from_jsonable(payload["original"])  # type: ignore[arg-type]
        if "speculating" in payload:
            cell.speculating = RunResult.from_jsonable(payload["speculating"])  # type: ignore[arg-type]
        return cell

    def to_payload(self) -> Dict[str, object]:
        """Full serialized form: the parallel result-pipe payload.

        Also the shape the run registry records — the serial and
        parallel oracle paths both feed this to the recorder, which is
        what keeps their registries byte-identical.
        """
        payload: Dict[str, object] = {
            "app": self.app,
            "profile": self.profile,
            "passed": self.passed,
            "detail": self.detail,
        }
        if self.original is not None:
            payload["original"] = self.original.to_jsonable()
        if self.speculating is not None:
            payload["speculating"] = self.speculating.to_jsonable()
        return payload

    def to_jsonable(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "app": self.app,
            "profile": self.profile_name,
            "passed": self.passed,
            "detail": self.detail,
        }
        if self.speculating is not None:
            entry["spec_restarts"] = self.speculating.spec_restarts
            entry["spec_hints_issued"] = self.speculating.spec_hints_issued
            entry["isolation_violations"] = self.speculating.isolation_violations
            entry["watchdog_tripped"] = self.speculating.watchdog_tripped
        return entry


@dataclass
class OracleReport:
    """Every cell of one oracle invocation."""

    cells: List[OracleCell] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    def failures(self) -> List[OracleCell]:
        return [cell for cell in self.cells if not cell.passed]

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "cells": [cell.to_jsonable() for cell in self.cells],
        }

    def summary(self) -> str:
        ok = sum(1 for cell in self.cells if cell.passed)
        verdict = "PASS" if self.passed else "FAIL"
        return f"oracle: {verdict} ({ok}/{len(self.cells)} cells identical)"


def run_oracle_cell(
    app: str,
    profile: Optional[str] = None,
    workload_scale: float = 1.0,
    fault_seed: int = 7,
    system: Optional[SystemConfig] = None,
    analysis_optimize: bool = False,
    trace_dir: Optional[str] = None,
) -> OracleCell:
    """Differential run of one app under one chaos profile.

    Both runs share the system seed and (when chaotic) the fault seed; the
    only difference is whether the binary was transformed
    (``analysis_optimize`` additionally applies the static-analysis
    elision plan to the transformed side).  Returns the cell; never raises
    — the caller decides whether a failure is fatal.

    With ``trace_dir`` set, both variants run under a tracer and a
    *diverging* cell dumps both event streams as JSONL to
    ``trace_dir/<app>-<profile>-<variant>.jsonl`` — the first question
    about any divergence is "what did the two runs actually do", and the
    traces answer it without a re-run.  Tracing cannot mask the bug being
    hunted: the tracer only reads the clock, so traced runs are
    cycle-identical to untraced ones.
    """
    base = ExperimentConfig(
        app=app,
        system=system or SystemConfig(),
        workload_scale=workload_scale,
        fault_profile=profile,
        fault_seed=fault_seed,
        analysis_optimize=analysis_optimize,
    )
    tracers: Dict[Variant, Tracer] = {}
    if trace_dir is not None:
        # Only pass the tracer kwarg when actually tracing: tests stub
        # run_experiment with plain (cfg)-signature fakes.
        tracers = {
            Variant.ORIGINAL: Tracer(SimClock()),
            Variant.SPECULATING: Tracer(SimClock()),
        }

    def _run(variant: Variant) -> "tuple[Optional[RunResult], Optional[DataLossError]]":
        cfg = base.with_(variant=variant)
        try:
            if variant in tracers:
                return run_experiment(cfg, tracer=tracers[variant]), None
            return run_experiment(cfg), None
        except DataLossError as exc:
            # Unrecoverable faults (double-fault profiles) are a legitimate,
            # *symmetric* outcome: both variants must fail the same way.
            return None, exc

    original, original_loss = _run(Variant.ORIGINAL)
    speculating, speculating_loss = _run(Variant.SPECULATING)

    cell = OracleCell(app=app, profile=profile, passed=True,
                      original=original, speculating=speculating)
    expects_loss = profile is not None and PROFILES[profile].expects_data_loss
    if original_loss is not None and speculating_loss is not None:
        cell.detail = (f"both variants raised DataLossError "
                       f"({'expected' if expects_loss else 'UNEXPECTED'} "
                       f"for this profile)")
        cell.passed = expects_loss
    elif original_loss is not None or speculating_loss is not None:
        side = "original" if original_loss is not None else "speculating"
        loss = original_loss if original_loss is not None else speculating_loss
        cell.passed = False
        cell.detail = (f"asymmetric data loss: only the {side} variant "
                       f"raised DataLossError ({loss})")
    elif expects_loss:
        cell.passed = False
        cell.detail = ("expected both variants to raise DataLossError "
                       "(double-fault profile), but both completed")
    else:
        assert original is not None and speculating is not None
        if speculating.output != original.output:
            cell.passed = False
            cell.detail = _first_output_diff(original.output, speculating.output)
        elif speculating.read_trace != original.read_trace:
            cell.passed = False
            cell.detail = _first_trace_diff(original.read_trace,
                                            speculating.read_trace)
    if trace_dir is not None and not cell.passed:
        os.makedirs(trace_dir, exist_ok=True)
        stem = f"{app}-{cell.profile_name}"
        for variant, tracer in tracers.items():
            path = os.path.join(trace_dir, f"{stem}-{variant.value}.jsonl")
            export_to_path(tracer, path, "jsonl")
        cell.detail += f" [traces in {trace_dir}/{stem}-*.jsonl]"
    return cell


def run_oracle(
    apps: Sequence[str],
    profiles: Sequence[Optional[str]] = ORACLE_PROFILES,
    workload_scale: float = 1.0,
    fault_seed: int = 7,
    system: Optional[SystemConfig] = None,
    strict: bool = False,
    analysis_optimize: bool = False,
    trace_dir: Optional[str] = None,
    jobs: int = 1,
    registry_path: Optional[str] = None,
) -> OracleReport:
    """Differential oracle over an app x chaos-profile grid.

    With ``strict`` set, the first divergence raises
    :class:`OracleMismatch`; otherwise every cell is collected into the
    report for the caller to inspect.  ``trace_dir`` enables per-cell
    divergence trace dumps (see :func:`run_oracle_cell`).

    With ``jobs > 1`` the (app, profile) cells run under the supervised
    parallel pool; each cell is still the same two same-seed runs, so the
    report is identical to a serial one.  A cell the supervisor had to
    quarantine (repeated crash/hang) is reported as a failed cell with
    its failure record — an oracle run never silently drops a cell.

    With ``registry_path`` set, an ``oracle`` group record plus one
    ``oracle-cell`` record per cell (with its two ``oracle-variant``
    children) land in the persistent run registry, identically for the
    serial and parallel paths.
    """
    registry_meta: Optional[Dict[str, object]] = None
    if registry_path is not None:
        registry_meta = _oracle_registry_meta(
            registry_path, apps, profiles, workload_scale, fault_seed,
        )
    if jobs > 1:
        return _run_oracle_parallel(
            apps, profiles, workload_scale, fault_seed, strict,
            analysis_optimize, trace_dir, jobs, system,
            registry_path, registry_meta,
        )
    report = OracleReport()
    payloads: Dict[str, Dict[str, object]] = {}
    mismatch: Optional[OracleMismatch] = None
    for app in apps:
        for profile in profiles:
            cell = run_oracle_cell(
                app, profile, workload_scale=workload_scale,
                fault_seed=fault_seed, system=system,
                analysis_optimize=analysis_optimize,
                trace_dir=trace_dir,
            )
            report.cells.append(cell)
            payloads[f"oracle/{app}/{profile or 'fault-free'}"] = (
                cell.to_payload()
            )
            if strict and not cell.passed and mismatch is None:
                mismatch = OracleMismatch(
                    f"{app} under {cell.profile_name}: {cell.detail}"
                )
            if mismatch is not None:
                break
        if mismatch is not None:
            break
    if registry_path is not None and payloads:
        from repro.harness.parallel import record_results_in_registry

        record_results_in_registry(registry_path, payloads, registry_meta)
    if mismatch is not None:
        raise mismatch
    return report


def _oracle_registry_meta(
    registry_path: str,
    apps: Sequence[str],
    profiles: Sequence[Optional[str]],
    workload_scale: float,
    fault_seed: int,
) -> Dict[str, object]:
    """Write the oracle matrix's group record; returns the cell context."""
    from repro.registry.fingerprint import code_version
    from repro.registry.record import RunRecord
    from repro.registry.store import RunRegistry

    version = code_version()
    parent = RunRecord(
        kind="oracle",
        code_version=version,
        meta={
            "apps": list(apps),
            "profiles": [p or "fault-free" for p in profiles],
            "workload_scale": workload_scale,
            "fault_seed": fault_seed,
        },
    )
    registry = RunRegistry.open(registry_path)
    try:
        parent_id = registry.record(parent)
        registry.compact()
    finally:
        registry.close()
    return {"parent_id": parent_id, "code_version": version}


def _run_oracle_parallel(
    apps: Sequence[str],
    profiles: Sequence[Optional[str]],
    workload_scale: float,
    fault_seed: int,
    strict: bool,
    analysis_optimize: bool,
    trace_dir: Optional[str],
    jobs: int,
    system: Optional[SystemConfig],
    registry_path: Optional[str] = None,
    registry_meta: Optional[Dict[str, object]] = None,
) -> OracleReport:
    """Shard oracle cells across the supervised worker pool."""
    from repro.harness.parallel import (
        run_cells_parallel,
        run_oracle_cell_payload,
    )

    cells = []
    keys: List[Tuple[str, str, Optional[str]]] = []
    for app in apps:
        for profile in profiles:
            key = f"oracle/{app}/{profile or 'fault-free'}"
            keys.append((key, app, profile))
            cells.append((key, run_oracle_cell_payload,
                          (app, profile, workload_scale, fault_seed,
                           analysis_optimize, trace_dir, system)))
    outcome = run_cells_parallel(cells, jobs=jobs, identity="oracle",
                                 registry_path=registry_path,
                                 registry_meta=registry_meta)

    report = OracleReport()
    for key, app, profile in keys:  # serial report order, not arrival order
        if key in outcome.results:
            cell = OracleCell.from_payload(outcome.results[key])
        else:
            record = outcome.quarantined.get(key, {})
            failures = record.get("failures", [])
            cell = OracleCell(
                app=app, profile=profile, passed=False,
                detail=(f"quarantined after {len(failures)} supervisor "  # type: ignore[arg-type]
                        f"failures (crash/hang); see checkpoint record"),
            )
        report.cells.append(cell)
        if strict and not cell.passed:
            raise OracleMismatch(
                f"{app} under {cell.profile_name}: {cell.detail}"
            )
    return report
