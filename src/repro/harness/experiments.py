"""Experiment drivers keyed to the paper's tables and figures."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.harness.checkpoint import run_cells
from repro.harness.config import APPS, ExperimentConfig, Variant
from repro.harness.results import RunResult
from repro.harness.runner import run_experiment
from repro.params import SystemConfig

#: Result matrix: {app: {variant_value: RunResult}}.
Matrix = Dict[str, Dict[str, RunResult]]


def run_one(
    app: str,
    variant: Variant,
    system: Optional[SystemConfig] = None,
    **kwargs: object,
) -> RunResult:
    """Run one (app, variant) pair on the default (or given) system."""
    cfg = ExperimentConfig(
        app=app, variant=variant, system=system or SystemConfig(), **kwargs
    )
    return run_experiment(cfg)


def run_matrix(
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    system: Optional[SystemConfig] = None,
    workload_scale: float = 1.0,
) -> Matrix:
    """Run every (app, variant) combination — the Figure 3 grid."""
    base = system or SystemConfig()
    results: Matrix = {}
    for app in apps:
        results[app] = {}
        for variant in variants:
            results[app][variant.value] = run_one(
                app, variant, system=base, workload_scale=workload_scale
            )
    return results


def run_disk_sweep(
    ndisks_list: Iterable[int] = (1, 2, 4, 10),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[int, Matrix]:
    """Vary available I/O parallelism — Table 8 and Figure 5."""
    results: Dict[int, Matrix] = {}
    for ndisks in ndisks_list:
        system = SystemConfig()
        system = system.replace(
            array=dataclasses.replace(system.array, ndisks=ndisks)
        )
        results[ndisks] = run_matrix(
            apps, variants, system=system, workload_scale=workload_scale
        )
    return results


def run_cache_size_sweep(
    cache_mbs: Iterable[float] = (6.0, 12.0, 64.0),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[float, Matrix]:
    """Vary the file cache size — Table 7."""
    results: Dict[float, Matrix] = {}
    for mb in cache_mbs:
        matrix: Matrix = {}
        for app in apps:
            matrix[app] = {}
            for variant in variants:
                matrix[app][variant.value] = run_experiment(
                    ExperimentConfig(
                        app=app,
                        variant=variant,
                        cache_paper_mb=mb,
                        workload_scale=workload_scale,
                    )
                )
        results[mb] = matrix
    return results


def run_cpu_ratio_sweep(
    ratios: Iterable[float] = (1, 2, 3, 5, 7, 9),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[float, Matrix]:
    """Simulate a widening processor/disk speed gap — Figure 6.

    Following the paper: delay completion notification by the ratio and
    limit outstanding prefetches to one per disk; the reported elapsed
    times are then scaled back down by the ratio.
    """
    results: Dict[float, Matrix] = {}
    for ratio in ratios:
        system = SystemConfig()
        system = system.replace(
            array=dataclasses.replace(
                system.array,
                completion_delay_factor=float(ratio),
                max_prefetches_per_disk=1,
            )
        )
        matrix = run_matrix(apps, variants, system=system,
                            workload_scale=workload_scale)
        for app_results in matrix.values():
            for result in app_results.values():
                # "then scaled our resulting measurements by half" (by the
                # ratio in general): the faster processor finishes the same
                # cycle count proportionally sooner.
                result.cycles = int(result.cycles / ratio)
        results[ratio] = matrix
    return results


def run_degraded_sweep(
    profiles: Iterable[str] = ("none", "disk-death", "rebuild-storm"),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[str, Matrix]:
    """Vary the storage fault regime — healthy vs. degraded-mode runs.

    ``"none"`` is the healthy baseline; permanent-death profiles run with
    auto-enabled parity redundancy (see ``resolved_system``), so each cell
    completes through degraded reads and background rebuild rather than
    failing.  The resulting matrix quantifies the degraded-mode slowdown
    and how much speculation still helps while the array rebuilds.
    """
    results: Dict[str, Matrix] = {}
    for profile in profiles:
        matrix: Matrix = {}
        for app in apps:
            matrix[app] = {}
            for variant in variants:
                matrix[app][variant.value] = run_experiment(
                    ExperimentConfig(
                        app=app,
                        variant=variant,
                        fault_profile=None if profile == "none" else profile,
                        workload_scale=workload_scale,
                    )
                )
        results[profile] = matrix
    return results


#: One independently runnable sweep cell: (key, thunk).
Cell = Tuple[str, Callable[[], RunResult]]

#: One sweep-axis value: numeric (disks/cache/ratio) or a fault-profile
#: name (degraded).
SweepPoint = Union[float, str]

#: Sweep-point values matching the CLI's ``sweep`` command.
SWEEP_POINTS: Dict[str, Tuple[SweepPoint, ...]] = {
    "disks": (1, 2, 4, 10),
    "cache": (6.0, 12.0, 32.0),
    "ratio": (1, 3, 5, 9),
    "degraded": ("none", "disk-death", "rebuild-storm"),
}


def point_label(point: SweepPoint) -> str:
    """Stable cell-key rendering of a sweep point (numbers via ``%g``)."""
    if isinstance(point, str):
        return point
    return f"{point:g}"


def sweep_cells(kind: str, workload_scale: float = 1.0) -> List[Cell]:
    """The independent cells of one sweep, for checkpointed execution.

    Each cell runs one (sweep point, app, variant) triple and is seeded
    independently, so any subset can be re-run and merged with previously
    checkpointed cells without changing a single result.
    """
    if kind not in SWEEP_POINTS:
        raise ValueError(
            f"unknown sweep kind {kind!r}; expected one of {sorted(SWEEP_POINTS)}"
        )
    cells: List[Cell] = []
    for point in SWEEP_POINTS[kind]:
        for app in APPS:
            for variant in tuple(Variant):
                key = f"{kind}={point_label(point)}/{app}/{variant.value}"
                cells.append((key, _cell_thunk(kind, point, app, variant,
                                               workload_scale)))
    return cells


def run_sweep_cell(
    kind: str,
    point: SweepPoint,
    app: str,
    variant: Variant,
    workload_scale: float,
) -> RunResult:
    """Run one sweep cell; mirrors the batch sweep drivers exactly.

    Module-level (and argument-addressable) so the parallel engine can
    ship the cell to a worker process by reference.
    """
    if kind == "disks":
        system = SystemConfig()
        system = system.replace(
            array=dataclasses.replace(system.array, ndisks=int(point))
        )
        return run_one(app, variant, system=system,
                       workload_scale=workload_scale)
    if kind == "cache":
        return run_experiment(ExperimentConfig(
            app=app, variant=variant, cache_paper_mb=float(point),
            workload_scale=workload_scale,
        ))
    if kind == "degraded":
        profile = str(point)
        return run_experiment(ExperimentConfig(
            app=app, variant=variant,
            fault_profile=None if profile == "none" else profile,
            workload_scale=workload_scale,
        ))
    # kind == "ratio": Figure 6's widened processor/disk gap, with the
    # post-run cycle scaling applied before the cell is checkpointed.
    system = SystemConfig()
    system = system.replace(
        array=dataclasses.replace(
            system.array,
            completion_delay_factor=float(point),
            max_prefetches_per_disk=1,
        )
    )
    result = run_one(app, variant, system=system,
                     workload_scale=workload_scale)
    result.cycles = int(result.cycles / float(point))
    return result


def _cell_thunk(
    kind: str,
    point: SweepPoint,
    app: str,
    variant: Variant,
    workload_scale: float,
) -> Callable[[], RunResult]:
    """One cell's runner for the serial checkpointed path."""

    def run() -> RunResult:
        return run_sweep_cell(kind, point, app, variant, workload_scale)

    return run


def sweep_registry_meta(
    registry_path: str,
    kind: str,
    workload_scale: float,
    identity: str,
) -> Dict[str, object]:
    """Write the sweep's group record; returns the cells' record context.

    The group record is pure function of the sweep's identity (no
    results, no clock), so serial and parallel runs — and re-runs — all
    produce the same parent run id and deduplicate onto one ledger line.
    """
    from repro.registry.fingerprint import code_version
    from repro.registry.record import RunRecord
    from repro.registry.store import RunRegistry

    version = code_version()
    parent = RunRecord(
        kind="sweep",
        code_version=version,
        meta={
            "identity": identity,
            "sweep_kind": kind,
            "workload_scale": workload_scale,
            "points": [point_label(p) for p in SWEEP_POINTS[kind]],
        },
    )
    registry = RunRegistry.open(registry_path)
    try:
        parent_id = registry.record(parent)
        registry.compact()
    finally:
        registry.close()
    return {
        "kind": "sweep-cell",
        "parent_id": parent_id,
        "code_version": version,
    }


def run_sweep_resumable(
    kind: str,
    workload_scale: float = 1.0,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[str, bool], None]] = None,
    jobs: int = 1,
    supervisor_config: Optional[object] = None,
    stats_out: Optional[Dict[str, object]] = None,
    registry_path: Optional[str] = None,
) -> Dict[SweepPoint, Matrix]:
    """Checkpointed equivalent of the batch sweep drivers.

    Runs cell by cell, checkpointing each finished cell atomically; with
    ``resume`` set, completed cells are restored from the checkpoint.  The
    reassembled nested mapping is identical to the batch drivers' output.

    With ``jobs > 1`` the cells are sharded across the supervised worker
    pool (see :mod:`repro.harness.parallel`): crashed and hung cells are
    rescheduled, poisoned cells are quarantined, and per-worker partial
    checkpoints make even a SIGKILL of this process resumable.  A
    quarantined cell raises :class:`~repro.errors.QuarantinedCell` *after*
    every other cell has completed and been checkpointed — the sweep's
    work is preserved, only the assembly of the full matrix fails.
    ``stats_out`` (if given) is filled with the supervisor's counters.

    With ``registry_path`` set, a ``sweep`` group record is written to
    the persistent run registry and every cell is recorded as a
    ``sweep-cell`` child of it (lineage for ``repro runs lineage``).
    """
    identity = f"sweep:{kind}:scale={workload_scale:g}"
    registry_meta: Optional[Dict[str, object]] = None
    if registry_path is not None:
        registry_meta = sweep_registry_meta(registry_path, kind,
                                            workload_scale, identity)
    if jobs > 1:
        from repro.harness.parallel import (
            require_complete,
            run_cells_parallel,
            sweep_parallel_cells,
        )
        outcome = run_cells_parallel(
            sweep_parallel_cells(kind, workload_scale),
            jobs=jobs,
            checkpoint_path=checkpoint_path,
            identity=identity,
            resume=resume,
            progress=progress,
            config=supervisor_config,
            registry_path=registry_path,
            registry_meta=registry_meta,
        )
        if stats_out is not None:
            stats_out.update(outcome.stats.to_jsonable())
        require_complete(outcome, what=f"{kind} sweep")
        flat = {key: RunResult.from_jsonable(payload)
                for key, payload in outcome.results.items()}
    else:
        flat = run_cells(
            sweep_cells(kind, workload_scale),
            checkpoint_path=checkpoint_path,
            identity=identity,
            resume=resume,
            progress=progress,
            registry_path=registry_path,
            registry_meta=registry_meta,
        )
    results: Dict[SweepPoint, Matrix] = {}
    for point in SWEEP_POINTS[kind]:
        matrix: Matrix = {}
        for app in APPS:
            matrix[app] = {}
            for variant in tuple(Variant):
                key = f"{kind}={point_label(point)}/{app}/{variant.value}"
                matrix[app][variant.value] = flat[key]
        results[point] = matrix
    return results


def improvements(matrix: Matrix) -> Dict[str, Dict[str, float]]:
    """Percent improvement of each hinting variant over the original."""
    table: Dict[str, Dict[str, float]] = {}
    for app, by_variant in matrix.items():
        original = by_variant[Variant.ORIGINAL.value]
        table[app] = {
            variant: result.improvement_over(original)
            for variant, result in by_variant.items()
            if variant != Variant.ORIGINAL.value
        }
    return table
