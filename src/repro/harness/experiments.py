"""Experiment drivers keyed to the paper's tables and figures."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

from repro.harness.config import APPS, ExperimentConfig, Variant
from repro.harness.results import RunResult
from repro.harness.runner import run_experiment
from repro.params import SystemConfig

#: Result matrix: {app: {variant_value: RunResult}}.
Matrix = Dict[str, Dict[str, RunResult]]


def run_one(
    app: str,
    variant: Variant,
    system: Optional[SystemConfig] = None,
    **kwargs: object,
) -> RunResult:
    """Run one (app, variant) pair on the default (or given) system."""
    cfg = ExperimentConfig(
        app=app, variant=variant, system=system or SystemConfig(), **kwargs
    )
    return run_experiment(cfg)


def run_matrix(
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    system: Optional[SystemConfig] = None,
    workload_scale: float = 1.0,
) -> Matrix:
    """Run every (app, variant) combination — the Figure 3 grid."""
    base = system or SystemConfig()
    results: Matrix = {}
    for app in apps:
        results[app] = {}
        for variant in variants:
            results[app][variant.value] = run_one(
                app, variant, system=base, workload_scale=workload_scale
            )
    return results


def run_disk_sweep(
    ndisks_list: Iterable[int] = (1, 2, 4, 10),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[int, Matrix]:
    """Vary available I/O parallelism — Table 8 and Figure 5."""
    results: Dict[int, Matrix] = {}
    for ndisks in ndisks_list:
        system = SystemConfig()
        system = system.replace(
            array=dataclasses.replace(system.array, ndisks=ndisks)
        )
        results[ndisks] = run_matrix(
            apps, variants, system=system, workload_scale=workload_scale
        )
    return results


def run_cache_size_sweep(
    cache_mbs: Iterable[float] = (6.0, 12.0, 64.0),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[float, Matrix]:
    """Vary the file cache size — Table 7."""
    results: Dict[float, Matrix] = {}
    for mb in cache_mbs:
        matrix: Matrix = {}
        for app in apps:
            matrix[app] = {}
            for variant in variants:
                matrix[app][variant.value] = run_experiment(
                    ExperimentConfig(
                        app=app,
                        variant=variant,
                        cache_paper_mb=mb,
                        workload_scale=workload_scale,
                    )
                )
        results[mb] = matrix
    return results


def run_cpu_ratio_sweep(
    ratios: Iterable[float] = (1, 2, 3, 5, 7, 9),
    apps: Iterable[str] = APPS,
    variants: Iterable[Variant] = tuple(Variant),
    workload_scale: float = 1.0,
) -> Dict[float, Matrix]:
    """Simulate a widening processor/disk speed gap — Figure 6.

    Following the paper: delay completion notification by the ratio and
    limit outstanding prefetches to one per disk; the reported elapsed
    times are then scaled back down by the ratio.
    """
    results: Dict[float, Matrix] = {}
    for ratio in ratios:
        system = SystemConfig()
        system = system.replace(
            array=dataclasses.replace(
                system.array,
                completion_delay_factor=float(ratio),
                max_prefetches_per_disk=1,
            )
        )
        matrix = run_matrix(apps, variants, system=system,
                            workload_scale=workload_scale)
        for app_results in matrix.values():
            for result in app_results.values():
                # "then scaled our resulting measurements by half" (by the
                # ratio in general): the faster processor finishes the same
                # cycle count proportionally sooner.
                result.cycles = int(result.cycles / ratio)
        results[ratio] = matrix
    return results


def improvements(matrix: Matrix) -> Dict[str, Dict[str, float]]:
    """Percent improvement of each hinting variant over the original."""
    table: Dict[str, Dict[str, float]] = {}
    for app, by_variant in matrix.items():
        original = by_variant[Variant.ORIGINAL.value]
        table[app] = {
            variant: result.improvement_over(original)
            for variant, result in by_variant.items()
            if variant != Variant.ORIGINAL.value
        }
    return table
