"""Experiment harness.

Builds complete simulated systems (disks -> striping -> cache/TIP -> kernel
-> application), runs the paper's three benchmarks in their three variants,
and formats the paper's tables and figures from the collected statistics.
"""

from repro.harness.checkpoint import (
    SweepCheckpoint,
    atomic_write_json,
    flush_on_signals,
    run_cells,
)
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.experiments import (
    run_cache_size_sweep,
    run_cpu_ratio_sweep,
    run_disk_sweep,
    run_matrix,
    run_one,
    run_sweep_cell,
    run_sweep_resumable,
    sweep_cells,
)
from repro.harness.parallel import (
    run_cells_parallel,
    sweep_parallel_cells,
)
from repro.harness.supervisor import (
    Supervisor,
    SupervisorConfig,
    SupervisorOutcome,
)
from repro.harness.fuzz import (
    FuzzCellResult,
    FuzzReport,
    replay_case,
    run_fuzz,
    run_fuzz_case,
)
from repro.harness.invariants import (
    DEFAULT_MONITORS,
    CellObservation,
    InvariantMonitor,
    VariantObservation,
    Violation,
    check_all,
)
from repro.harness.oracle import (
    OracleCell,
    OracleReport,
    run_oracle,
    run_oracle_cell,
)
from repro.harness.results import RunResult
from repro.harness.runner import build_system, run_experiment

__all__ = [
    "ExperimentConfig",
    "Variant",
    "RunResult",
    "build_system",
    "run_experiment",
    "run_one",
    "run_matrix",
    "run_disk_sweep",
    "run_cache_size_sweep",
    "run_cpu_ratio_sweep",
    "run_sweep_cell",
    "run_sweep_resumable",
    "sweep_cells",
    "sweep_parallel_cells",
    "SweepCheckpoint",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorOutcome",
    "atomic_write_json",
    "flush_on_signals",
    "run_cells",
    "run_cells_parallel",
    "OracleCell",
    "OracleReport",
    "run_oracle",
    "run_oracle_cell",
    "FuzzCellResult",
    "FuzzReport",
    "replay_case",
    "run_fuzz",
    "run_fuzz_case",
    "DEFAULT_MONITORS",
    "CellObservation",
    "InvariantMonitor",
    "VariantObservation",
    "Violation",
    "check_all",
]
