"""Experiment harness.

Builds complete simulated systems (disks -> striping -> cache/TIP -> kernel
-> application), runs the paper's three benchmarks in their three variants,
and formats the paper's tables and figures from the collected statistics.
"""

from repro.harness.checkpoint import SweepCheckpoint, atomic_write_json, run_cells
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.experiments import (
    run_cache_size_sweep,
    run_cpu_ratio_sweep,
    run_disk_sweep,
    run_matrix,
    run_one,
    run_sweep_resumable,
    sweep_cells,
)
from repro.harness.oracle import (
    OracleCell,
    OracleReport,
    run_oracle,
    run_oracle_cell,
)
from repro.harness.results import RunResult
from repro.harness.runner import build_system, run_experiment

__all__ = [
    "ExperimentConfig",
    "Variant",
    "RunResult",
    "build_system",
    "run_experiment",
    "run_one",
    "run_matrix",
    "run_disk_sweep",
    "run_cache_size_sweep",
    "run_cpu_ratio_sweep",
    "run_sweep_resumable",
    "sweep_cells",
    "SweepCheckpoint",
    "atomic_write_json",
    "run_cells",
    "OracleCell",
    "OracleReport",
    "run_oracle",
    "run_oracle_cell",
]
