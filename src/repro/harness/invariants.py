"""Composable invariant monitors evaluated inside every chaos-fuzz cell.

The chaos fuzzer (``repro fuzz``) does not assert "the run finished"; it
asserts that the paper's safety contract held *while* the run was being
tortured.  Each monitor below checks one clause of that contract against
the live simulated system (and its result record) after a differential
spec-on / spec-off pair:

* ``audit-chain`` — every speculating process's hash-chained audit table
  still verifies (a tampered record is detected, per DESIGN.md §8);
* ``hint-lifecycle`` — every disclosed hint ended in exactly one terminal
  state, aggregates reconcile with the detailed records, and no terminal
  predates its disclosure;
* ``cancel-drain`` — ``TIPIO_CANCEL_ALL`` drained the hint queue at every
  restart boundary and nothing is left outstanding at end of run;
* ``spec-identity`` — spec-on output and demand-read trace are
  byte-identical to spec-off (the PR 2 oracle), with symmetric typed-error
  handling for plans designed to lose data;
* ``typed-errors`` — only :class:`~repro.errors.ReproError` subclasses may
  escape a run, and :class:`~repro.errors.DataLossError` only from a plan
  that composes a double fault;
* ``clock-monotonic`` — the simulation clock never runs backwards and the
  result's cycle count matches the clock the system actually ended on.

A failed check is never an exception: it is a :class:`Violation` carrying
a structured witness dict, so a campaign can collect, deduplicate, shrink
and persist every finding.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DataLossError, IsolationViolation, ReproError
from repro.faults.plan import FaultPlan
from repro.harness.oracle import _first_output_diff, _first_trace_diff
from repro.harness.results import RunResult
from repro.trace.lifecycle import CANCELLED


@dataclass
class Violation:
    """One invariant breach, with enough witness to reproduce and debug."""

    monitor: str
    detail: str
    witness: Dict[str, object] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "monitor": self.monitor,
            "detail": self.detail,
            "witness": dict(self.witness),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "Violation":
        return cls(
            monitor=str(data.get("monitor", "?")),
            detail=str(data.get("detail", "")),
            witness=dict(data.get("witness", {})),  # type: ignore[arg-type]
        )

    def __str__(self) -> str:
        return f"[{self.monitor}] {self.detail}"


@dataclass
class VariantObservation:
    """Everything one variant's run left behind for the monitors.

    ``system`` is the live :class:`~repro.harness.runner.System` (captured
    through the runner's system-observer hook, so it is available even
    when the run escaped with an exception); ``error`` is whatever escaped
    ``kernel.run()``, or None for a clean completion; ``clock_samples``
    are (label, cycle) pairs taken at observation points in program order.
    """

    variant: str
    result: Optional[RunResult] = None
    system: Optional[object] = None
    error: Optional[BaseException] = None
    clock_samples: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def processes(self) -> List[object]:
        kernel = getattr(self.system, "kernel", None)
        return list(getattr(kernel, "processes", ()) or ())


@dataclass
class CellObservation:
    """One fuzz cell: both variants of one app under one generated plan."""

    app: str
    plan: FaultPlan
    spec_overrides: Dict[str, object] = field(default_factory=dict)
    variants: Dict[str, VariantObservation] = field(default_factory=dict)

    @property
    def expects_data_loss(self) -> bool:
        return self.plan.expects_data_loss


class InvariantMonitor:
    """Base class: one named clause of the safety contract."""

    name = "invariant"

    def check(self, obs: CellObservation) -> List[Violation]:
        raise NotImplementedError

    def _violation(self, detail: str, **witness: object) -> Violation:
        return Violation(self.name, detail, dict(witness))


class AuditChainMonitor(InvariantMonitor):
    """The tamper-evident audit table must still verify end to end."""

    name = "audit-chain"

    def check(self, obs: CellObservation) -> List[Violation]:
        violations: List[Violation] = []
        for vobs in obs.variants.values():
            for process in vobs.processes:
                spec = getattr(process, "spec", None)
                auditor = getattr(spec, "auditor", None)
                if auditor is None:
                    continue
                try:
                    auditor.table.verify()
                except IsolationViolation as exc:
                    violations.append(self._violation(
                        f"{vobs.variant}: audit chain broken: {exc}",
                        variant=vobs.variant,
                        pid=getattr(process, "pid", -1),
                        records_total=auditor.table.records_total,
                        head_digest=auditor.table.head_digest,
                    ))
        return violations


class HintLifecycleMonitor(InvariantMonitor):
    """Exactly one terminal state per disclosed hint, books balanced."""

    name = "hint-lifecycle"

    def check(self, obs: CellObservation) -> List[Violation]:
        violations: List[Violation] = []
        for vobs in obs.variants.values():
            lifecycle = getattr(
                getattr(vobs.system, "manager", None), "lifecycle", None
            )
            if lifecycle is None:
                continue
            counts = lifecycle.summary_counts()
            if vobs.error is None and lifecycle.open_total != 0:
                violations.append(self._violation(
                    f"{vobs.variant}: {lifecycle.open_total} hint(s) still "
                    f"open after finalize (no terminal state)",
                    variant=vobs.variant, counts=counts,
                ))
            if lifecycle.open_total < 0:
                violations.append(self._violation(
                    f"{vobs.variant}: negative open-hint count "
                    f"{lifecycle.open_total} — some hint reached more than "
                    f"one terminal state",
                    variant=vobs.variant, counts=counts,
                ))
            if lifecycle.disclosed_total > lifecycle.capacity:
                continue  # detailed records are capped; aggregates only
            records = lifecycle.records()
            detailed = Counter(
                record.terminal for record in records
                if record.terminal is not None
            )
            for terminal, total in lifecycle.terminal_counts.items():
                if detailed.get(terminal, 0) != total:
                    violations.append(self._violation(
                        f"{vobs.variant}: {terminal} aggregate {total} != "
                        f"{detailed.get(terminal, 0)} detailed record(s) — "
                        f"ledger books do not balance",
                        variant=vobs.variant, terminal=terminal,
                        aggregate=total, detailed=detailed.get(terminal, 0),
                    ))
            for record in records:
                if (record.terminal is not None
                        and record.terminal_ts < record.disclosed_ts):
                    violations.append(self._violation(
                        f"{vobs.variant}: hint seq {record.seq} reached "
                        f"{record.terminal} at cycle {record.terminal_ts}, "
                        f"before its disclosure at {record.disclosed_ts}",
                        variant=vobs.variant, seq=record.seq,
                        terminal=record.terminal,
                        terminal_ts=record.terminal_ts,
                        disclosed_ts=record.disclosed_ts,
                    ))
        return violations


class CancelDrainMonitor(InvariantMonitor):
    """``TIPIO_CANCEL_ALL`` drains the queue at every restart boundary."""

    name = "cancel-drain"

    def check(self, obs: CellObservation) -> List[Violation]:
        violations: List[Violation] = []
        for vobs in obs.variants.values():
            manager = getattr(vobs.system, "manager", None)
            if manager is None:
                continue
            lifecycle = getattr(manager, "lifecycle", None)
            for process in vobs.processes:
                pid = getattr(process, "pid", -1)
                if vobs.error is None:
                    outstanding = manager.outstanding_hints(pid)
                    if outstanding:
                        violations.append(self._violation(
                            f"{vobs.variant}: pid {pid} ended the run with "
                            f"{outstanding} hint(s) still queued in TIP",
                            variant=vobs.variant, pid=pid,
                            outstanding=outstanding,
                        ))
                    if lifecycle is not None and lifecycle.open_for(pid):
                        violations.append(self._violation(
                            f"{vobs.variant}: pid {pid} ended the run with "
                            f"{lifecycle.open_for(pid)} open hint(s) in the "
                            f"lifecycle ledger",
                            variant=vobs.variant, pid=pid,
                            open=lifecycle.open_for(pid),
                        ))
                spec = getattr(process, "spec", None)
                auditor = getattr(spec, "auditor", None)
                if spec is None or auditor is None:
                    continue
                table = auditor.table
                restart_records = [
                    record for record in table.records()
                    if record.kind == "restart"
                ]
                # Every restart must have logged its drained cancel.  The
                # table folds old records past capacity, so the count is
                # exact only while nothing has folded out.
                if (table.records_total <= table.capacity
                        and len(restart_records) != spec.restarts):
                    violations.append(self._violation(
                        f"{vobs.variant}: pid {pid} restarted "
                        f"{spec.restarts} time(s) but the audit table holds "
                        f"{len(restart_records)} restart record(s) — a "
                        f"restart skipped its cancel-drain audit",
                        variant=vobs.variant, pid=pid,
                        restarts=spec.restarts,
                        restart_records=len(restart_records),
                    ))
            if lifecycle is not None and vobs.error is None:
                cancelled = lifecycle.terminal_counts.get(CANCELLED, 0)
                if manager.cancelled_total != cancelled:
                    violations.append(self._violation(
                        f"{vobs.variant}: TIP cancelled "
                        f"{manager.cancelled_total} hint(s) but the ledger "
                        f"recorded {cancelled} cancellation(s)",
                        variant=vobs.variant,
                        manager_cancelled=manager.cancelled_total,
                        ledger_cancelled=cancelled,
                    ))
        return violations


class SpecIdentityMonitor(InvariantMonitor):
    """Spec-on must be byte-identical to spec-off (the PR 2 oracle)."""

    name = "spec-identity"

    def check(self, obs: CellObservation) -> List[Violation]:
        original = obs.variants.get("original")
        speculating = obs.variants.get("speculating")
        if original is None or speculating is None:
            return []
        o_err, s_err = original.error, speculating.error
        if obs.expects_data_loss:
            if not (isinstance(o_err, DataLossError)
                    and isinstance(s_err, DataLossError)):
                return [self._violation(
                    "double-fault plan expected symmetric DataLossError; "
                    f"original raised {type(o_err).__name__ if o_err else 'nothing'}, "
                    f"speculating raised {type(s_err).__name__ if s_err else 'nothing'}",
                    original_error=repr(o_err), speculating_error=repr(s_err),
                )]
            return []
        if o_err is None and s_err is None:
            assert original.result is not None
            assert speculating.result is not None
            if speculating.result.output != original.result.output:
                return [self._violation(
                    "output divergence: " + _first_output_diff(
                        original.result.output, speculating.result.output
                    ),
                    original_bytes=len(original.result.output),
                    speculating_bytes=len(speculating.result.output),
                )]
            if speculating.result.read_trace != original.result.read_trace:
                return [self._violation(
                    "demand-read divergence: " + _first_trace_diff(
                        original.result.read_trace,
                        speculating.result.read_trace,
                    ),
                    original_reads=len(original.result.read_trace),
                    speculating_reads=len(speculating.result.read_trace),
                )]
            return []
        if type(o_err) is not type(s_err):
            return [self._violation(
                f"asymmetric escape: original "
                f"{type(o_err).__name__ if o_err else 'completed'}, "
                f"speculating "
                f"{type(s_err).__name__ if s_err else 'completed'}",
                original_error=repr(o_err), speculating_error=repr(s_err),
            )]
        # Same typed error on both sides of a plan not designed to lose
        # data: symmetric, so not an *identity* problem (typed-errors
        # judges whether the escape itself was legitimate).
        return []


class TypedErrorMonitor(InvariantMonitor):
    """Only typed ``ReproError``\\ s may escape, and data loss only when
    the plan composed a double fault."""

    name = "typed-errors"

    def check(self, obs: CellObservation) -> List[Violation]:
        violations: List[Violation] = []
        for vobs in obs.variants.values():
            error = vobs.error
            if error is None:
                continue
            if not isinstance(error, ReproError):
                violations.append(self._violation(
                    f"{vobs.variant}: untyped {type(error).__name__} escaped "
                    f"the run: {error}",
                    variant=vobs.variant,
                    error_type=type(error).__name__, error=str(error),
                ))
            elif (isinstance(error, DataLossError)
                    and not obs.expects_data_loss):
                violations.append(self._violation(
                    f"{vobs.variant}: DataLossError without a double-fault "
                    f"plan — redundancy failed to mask a survivable fault: "
                    f"{error}",
                    variant=vobs.variant, error=str(error),
                    dead_disk=obs.plan.dead_disk,
                    second_dead_disk=obs.plan.second_dead_disk,
                ))
        return violations


class ClockMonotonicityMonitor(InvariantMonitor):
    """The simulation clock only moves forward."""

    name = "clock-monotonic"

    def check(self, obs: CellObservation) -> List[Violation]:
        violations: List[Violation] = []
        for vobs in obs.variants.values():
            samples = vobs.clock_samples
            for (label_a, a), (label_b, b) in zip(samples, samples[1:]):
                if b < a:
                    violations.append(self._violation(
                        f"{vobs.variant}: clock ran backwards: "
                        f"{label_a}={a} then {label_b}={b}",
                        variant=vobs.variant, samples=list(samples),
                    ))
            if vobs.result is not None:
                if vobs.result.cycles < 0:
                    violations.append(self._violation(
                        f"{vobs.variant}: negative cycle count "
                        f"{vobs.result.cycles}",
                        variant=vobs.variant, cycles=vobs.result.cycles,
                    ))
                if samples and vobs.result.cycles != samples[-1][1]:
                    violations.append(self._violation(
                        f"{vobs.variant}: result reports "
                        f"{vobs.result.cycles} cycles but the clock ended "
                        f"at {samples[-1][1]}",
                        variant=vobs.variant, cycles=vobs.result.cycles,
                        clock=samples[-1][1],
                    ))
        return violations


#: The full contract, in evaluation order.
DEFAULT_MONITORS: Tuple[InvariantMonitor, ...] = (
    AuditChainMonitor(),
    HintLifecycleMonitor(),
    CancelDrainMonitor(),
    SpecIdentityMonitor(),
    TypedErrorMonitor(),
    ClockMonotonicityMonitor(),
)


def check_all(
    obs: CellObservation,
    monitors: Tuple[InvariantMonitor, ...] = DEFAULT_MONITORS,
) -> List[Violation]:
    """Evaluate every monitor; concatenated violations, monitor order."""
    violations: List[Violation] = []
    for monitor in monitors:
        violations.extend(monitor.check(obs))
    return violations
