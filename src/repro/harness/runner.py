"""Builds a complete simulated system and runs one benchmark."""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.apps.agrep import AgrepWorkload, build_agrep
from repro.apps.gnuld import GnuldWorkload, build_gnuld
from repro.apps.xdataslice import XdsWorkload, build_xdataslice
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fs.cache import BlockCache
from repro.fs.filesystem import FileSystem
from repro.fs.readahead import SequentialReadAhead
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.results import RunResult, median_interval
from repro.kernel.kernel import Kernel
from repro.params import SystemConfig
from repro.registry.fingerprint import params_digest, spec_tunables
from repro.sim import metrics
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.spechint.tool import SpecHintTool
from repro.storage.striping import StripedArray
from repro.tip.manager import TipManager
from repro.trace.phases import stall_breakdown
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.vm.binary import Binary


@dataclass
class System:
    """A fully wired simulated machine, ready to spawn processes."""

    config: SystemConfig
    clock: SimClock
    engine: EventEngine
    stats: StatRegistry
    fs: FileSystem
    array: StripedArray
    cache: BlockCache
    manager: TipManager
    kernel: Kernel
    injector: Optional[FaultInjector] = None
    tracer: Tracer = NULL_TRACER


def build_system(
    config: SystemConfig,
    fs: FileSystem,
    fault_plan: Optional[FaultPlan] = None,
    tracer: Tracer = NULL_TRACER,
) -> System:
    """Wire up disks, striping, cache, TIP and the kernel over ``fs``.

    Call after the file system has been populated (the striped array must
    cover every allocated block).  With ``fault_plan`` set, one
    :class:`FaultInjector` is threaded through the storage stack and the
    kernel; without it the machine is bit-identical to the fault-free
    simulator.  A live ``tracer`` is bound to the run's clock and stat
    registry and threaded through every layer; the default
    :data:`NULL_TRACER` keeps the whole pipeline at one boolean test per
    instrumentation site.
    """
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    if tracer.enabled:
        tracer.bind_clock(clock)
        tracer.attach_stats(stats)
    injector: Optional[FaultInjector] = None
    if fault_plan is not None and fault_plan.active:
        injector = FaultInjector(fault_plan, config.cpu, clock, stats)
    array = StripedArray(
        fs.total_blocks, config.array, config.disk, config.cpu, engine, stats,
        injector=injector, tracer=tracer,
    )
    cache = BlockCache(config.cache.capacity_blocks, stats)
    readahead = SequentialReadAhead(config.cache.max_readahead_blocks)
    manager = TipManager(fs, array, cache, readahead, stats, config.tip,
                         tracer=tracer)
    kernel = Kernel(config, fs, manager, array, engine, clock, stats,
                    injector=injector, tracer=tracer)
    return System(config, clock, engine, stats, fs, array, cache, manager,
                  kernel, injector, tracer)


#: Callbacks invoked with every freshly wired :class:`System` just before
#: its kernel starts running.  The parallel sweep supervisor's worker
#: registers one to expose the live sim clock to its heartbeat thread —
#: the hung-cell watchdog judges health by sim-cycle progress, which is
#: only observable from inside the run.
_SYSTEM_OBSERVERS: List[Callable[[System], None]] = []


def add_system_observer(callback: Callable[[System], None]) -> None:
    """Register a callback to see every system built by this process."""
    _SYSTEM_OBSERVERS.append(callback)


def remove_system_observer(callback: Callable[[System], None]) -> None:
    """Unregister a callback added by :func:`add_system_observer`."""
    with contextlib.suppress(ValueError):
        _SYSTEM_OBSERVERS.remove(callback)


def _build_postgres(selectivity_pct: int):
    from repro.apps.postgres import PostgresWorkload, build_postgres

    def build(fs: FileSystem, scale: float, manual: bool) -> Binary:
        workload = PostgresWorkload(selectivity_pct=selectivity_pct)
        return build_postgres(fs, workload.scaled(scale), manual_hints=manual)

    return build


#: Application builders: (fs, workload_scale, manual) -> Binary.
_BUILDERS: Dict[str, Callable[[FileSystem, float, bool], Binary]] = {
    "agrep": lambda fs, scale, manual: build_agrep(
        fs, AgrepWorkload().scaled(scale), manual_hints=manual
    ),
    "gnuld": lambda fs, scale, manual: build_gnuld(
        fs, GnuldWorkload().scaled(scale), manual_hints=manual
    ),
    "xds": lambda fs, scale, manual: build_xdataslice(
        fs, XdsWorkload().scaled(scale), manual_hints=manual
    ),
    "postgres20": _build_postgres(20),
    "postgres80": _build_postgres(80),
}


def run_experiment(
    cfg: ExperimentConfig,
    tracer: Tracer = NULL_TRACER,
) -> RunResult:
    """Run one benchmark in one configuration; returns the result record."""
    result, _ = run_experiment_with_system(cfg, tracer=tracer)
    return result


def run_experiment_with_system(
    cfg: ExperimentConfig,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[RunResult, System]":
    """:func:`run_experiment`, but also hands back the wired system.

    Trace consumers (the ``repro trace`` command, tests) need the live
    objects — the hint-lifecycle ledger, the kernel — not just the result
    record.
    """
    system_config = cfg.resolved_system()
    fs = FileSystem(allocation_jitter_blocks=24, seed=system_config.seed)
    builder = _BUILDERS[cfg.app]
    binary = builder(fs, cfg.workload_scale, cfg.variant is Variant.MANUAL)

    transform_report = None
    if cfg.variant is Variant.SPECULATING:
        tool = SpecHintTool(
            params=system_config.spechint,
            map_all_addresses=cfg.map_all_addresses,
            optimize=cfg.analysis_optimize,
        )
        binary = tool.transform(binary)
        transform_report = binary.spec_meta.report

    system = build_system(system_config, fs, fault_plan=cfg.resolved_fault_plan(),
                          tracer=tracer)
    for observer in _SYSTEM_OBSERVERS:
        observer(system)
    process = system.kernel.spawn(binary)
    system.kernel.run()
    # A rebuild that outlives the workload finishes on the sim clock here,
    # so its completion time lands in the run's deterministic results.  The
    # workload-completion cycle is recorded first (only in this case, so
    # fault-free counter snapshots are unchanged): total cycles then cover
    # workload + drain, and consumers comparing against a healthy run need
    # the pre-drain mark to measure demand-path slowdown.
    if system.array.rebuild_active:
        system.stats.counter(metrics.WORKLOAD_COMPLETED_CYCLE).add(
            system.clock.now)
        system.array.drain_rebuild()
    system.manager.finalize()

    read_dist = system.stats.distribution_or_none(metrics.APP_READ_CALL_CPU)
    hint_dist = system.stats.distribution_or_none(metrics.APP_HINT_CALL_CPU)

    result = RunResult(
        app=cfg.app,
        variant=cfg.variant.value,
        cycles=system.clock.now,
        cpu_hz=system_config.cpu.hz,
        counters=system.stats.snapshot(),
        output=bytes(process.output),
        median_read_interval=median_interval(read_dist.values) if read_dist else 0.0,
        median_hint_interval=median_interval(hint_dist.values) if hint_dist else 0.0,
        transform_report=transform_report,
        footprint_bytes=process.vmstat.footprint_bytes,
        page_reclaims=process.vmstat.reclaims,
        page_faults=process.vmstat.faults,
    )
    if cfg.fault_plan is not None:
        result.fault_profile = cfg.fault_plan.name
    else:
        result.fault_profile = cfg.fault_profile
    # Registry identity: everything the run ledger keys on must be stamped
    # on the result itself, so a payload shipped back from a worker process
    # carries its own keys (the recorder never sees the config).
    result.params_digest = params_digest(cfg)
    result.seed = system_config.seed
    result.spec_params = spec_tunables(system_config.spechint)
    result.tuning_provenance = cfg.tuning_provenance
    result.read_trace = tuple(process.read_trace)
    result.stall_breakdown = stall_breakdown(system.kernel).to_jsonable()
    lifecycle = getattr(system.manager, "lifecycle", None)
    if lifecycle is not None:
        result.hint_lifecycle = lifecycle.summary_counts()
        result.hint_lead_median = lifecycle.lead_times.percentile(50.0)
        result.pct_prefetches_before_demand = lifecycle.pct_ready_before_demand
    if process.spec is not None:
        result.spec_restarts = process.spec.restarts
        result.spec_signals = process.spec.signals
        result.spec_cancel_calls = process.spec.cancel_calls
        result.spec_hints_issued = process.spec.hints_issued
        result.spec_parks = dict(process.spec.parks)
        result.watchdog_tripped = process.spec.watchdog.trip_reason
        result.isolation_violations = process.spec.isolation_violations
        result.quarantines = process.spec.quarantine_state.violations
        result.quarantine_permanent = process.spec.quarantine_state.permanent
        if process.spec.auditor is not None:
            result.audit_records = process.spec.auditor.table.records_total
            result.audit_head_digest = process.spec.auditor.table.head_digest
    return result, system
