"""Supervised worker pool for parallel sweep execution.

The parallel sweep engine shards simulation cells across worker
processes.  Workers are treated as **untrusted**: they can crash (OOM
kill, segfault, ``SIGKILL``), hang (a simulation whose clock stops
advancing), or fail the same cell every time they touch it.  The
:class:`Supervisor` keeps the sweep alive through all three:

* **heartbeats** — each worker runs a daemon thread that reports its
  in-flight cell's *simulation progress* (systems built, sim cycles)
  over its private result queue a few times per second (one queue per
  worker: a shared queue's cross-process write lock is a non-robust
  semaphore, and a worker SIGKILLed while holding it would wedge every
  other worker's channel);
* **hung-cell watchdog** — a cell whose reported sim progress does not
  change within ``stall_deadline_s`` is declared hung; its worker is
  killed and the cell rescheduled.  The deadline is a *sim-progress*
  deadline, not total-wall-clock guesswork: a slow cell whose clock
  keeps advancing is healthy no matter how long it runs;
* **crash detection** — a worker that dies without delivering a result
  gets its cell rescheduled with exponential backoff and a fresh worker
  respawned in its slot;
* **quarantine** — a cell that fails ``max_cell_failures`` times (by
  crash, hang, or exception) is recorded as quarantined with every
  attempt's traceback, mirroring the runtime's ``IsolationQuarantine``:
  one poisoned cell must not sink an hours-long sweep;
* **pool-health abort** — if workers keep dying without completing any
  cell (a crash storm: broken interpreter, impossible environment), the
  run aborts with a typed :class:`~repro.errors.WorkerCrash` instead of
  spinning forever.  Completed cells are already checkpointed by then.

Workers also write **partial checkpoints** (``<path>.worker-<slot>``)
before reporting a result, so even a ``SIGKILL`` of the *parent*
mid-sweep loses at most the cells that were actually mid-computation;
the next run merges the partials back (see ``harness/parallel.py``).

``concurrent.futures.ProcessPoolExecutor`` is deliberately not used:
killing one hung worker breaks the whole executor (``BrokenProcessPool``)
and it offers no per-task heartbeat channel, so the supervisor manages
``multiprocessing.Process`` workers directly.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CellTimeout, WorkerCrash

#: One schedulable unit: key, a picklable callable, its arguments.  The
#: callable must be a module-level function (pickled by reference) and
#: must return a JSON-safe dict — payloads cross the result pipe and are
#: recorded verbatim into checkpoints.
CellSpec = Tuple[str, Callable[..., Dict[str, object]], Tuple[object, ...]]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervised pool."""

    #: Worker process count (the CLI's ``--jobs``).
    jobs: int = 2
    #: Seconds between worker heartbeats.
    heartbeat_interval_s: float = 0.2
    #: Sim-progress deadline: a cell whose reported (systems, cycles)
    #: progress stays frozen this long is hung.  Generous by default —
    #: the cost of a false kill is a wasted re-run, the cost of a missed
    #: hang is a stuck sweep.
    stall_deadline_s: float = 30.0
    #: Failures (crash/hang/exception) before a cell is quarantined.
    max_cell_failures: int = 3
    #: Exponential-backoff schedule for rescheduling a failed cell.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 5.0
    #: Consecutive worker deaths with no completed cell in between before
    #: the pool is declared unhealthy and the run aborts.
    max_pool_failures: int = 8
    #: multiprocessing start method; None picks fork when available
    #: (cheap, inherits test-registered cell runners) else spawn.
    start_method: Optional[str] = None

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"


@dataclass
class CellFailure:
    """One failed attempt at one cell."""

    kind: str  # "crash" | "timeout" | "error"
    detail: str

    def to_jsonable(self) -> Dict[str, object]:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class SupervisorStats:
    """Counters describing how a supervised run behaved."""

    mode: str = "parallel"  # "parallel" | "serial"
    jobs: int = 1
    cells_completed: int = 0
    cells_restored: int = 0
    retries: int = 0
    worker_crashes: int = 0
    cell_timeouts: int = 0
    cell_errors: int = 0
    workers_spawned: int = 0

    def to_jsonable(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class SupervisorOutcome:
    """Everything a supervised run produced."""

    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    quarantined: Dict[str, Dict[str, object]] = field(default_factory=dict)
    stats: SupervisorStats = field(default_factory=SupervisorStats)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _WorkerProgress:
    """Mutable slots shared between a worker's main and heartbeat threads.

    Reads and writes of these slots are single-bytecode attribute ops,
    so the heartbeat thread always sees a coherent (if slightly stale)
    view without locking.
    """

    __slots__ = ("key", "systems", "clock")

    def __init__(self) -> None:
        self.key: Optional[str] = None
        self.systems = 0
        self.clock = None  # repro.sim.clock.SimClock of the live system


def _heartbeat_loop(
    worker_id: int,
    result_queue: "multiprocessing.Queue",
    progress: _WorkerProgress,
    interval_s: float,
    parent_pid: int,
) -> None:
    """Daemon thread: report sim progress; die with the parent.

    The progress value is ``(systems_built, sim_cycles)`` — any change
    counts as progress, including a new system being wired (an oracle
    cell builds two).  The ppid check makes orphaned workers exit when
    the parent is SIGKILLed instead of lingering on a dead task queue.
    """
    while True:
        time.sleep(interval_s)
        if os.getppid() != parent_pid:
            os._exit(2)
        key = progress.key
        if key is None:
            continue
        clock = progress.clock
        cycles = clock.now if clock is not None else -1
        try:
            result_queue.put(("hb", worker_id, key, (progress.systems, cycles)))
        except (OSError, ValueError):
            os._exit(2)


def _worker_main(
    worker_id: int,
    slot: int,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    heartbeat_interval_s: float,
    partial_path: Optional[str],
    identity: str,
    registry_sidecar: Optional[str] = None,
    registry_ctx: Optional[Dict[str, object]] = None,
) -> None:
    """Worker process: run cells from the task queue until told to stop."""
    # The parent owns interruption: a terminal Ctrl-C goes to the parent,
    # which flushes the checkpoint and tears the pool down deliberately.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    parent_pid = os.getppid()

    progress = _WorkerProgress()

    def observe_system(system: object) -> None:
        progress.systems += 1
        progress.clock = system.clock  # type: ignore[attr-defined]

    from repro.harness import runner as runner_mod
    from repro.harness.checkpoint import SweepCheckpoint

    runner_mod.add_system_observer(observe_system)

    partial: Optional[SweepCheckpoint] = None
    if partial_path is not None:
        # Reload an existing partial (this slot crashed earlier and kept
        # some cells) or start a fresh one.
        try:
            partial = SweepCheckpoint.load(partial_path, identity)
        except Exception:
            partial = SweepCheckpoint(partial_path, identity)

    threading.Thread(
        target=_heartbeat_loop,
        args=(worker_id, result_queue, progress, heartbeat_interval_s,
              parent_pid),
        daemon=True,
    ).start()

    result_queue.put(("ready", worker_id))
    while True:
        try:
            task = task_queue.get(timeout=0.5)
        except queue_mod.Empty:
            if os.getppid() != parent_pid:
                os._exit(2)
            continue
        if task is None:
            return
        key, fn, args = task
        progress.key = key
        result_queue.put(("start", worker_id, key))
        try:
            payload = fn(*args)
        except BaseException:
            result_queue.put(("fail", worker_id, key, traceback.format_exc()))
            progress.key = None
            continue
        if partial is not None:
            # Persist before reporting: a parent SIGKILL between these
            # two steps loses nothing — the next run merges the partial.
            try:
                partial.record_payload(key, payload)
            except Exception:
                pass  # a broken partial only costs recomputation
        if registry_sidecar is not None:
            # Same ordering for the run-registry sidecar ledger: the cell
            # reaches the registry even if the parent dies before it can
            # merge.  Best-effort — the parent re-records every delivered
            # payload idempotently, so a failed append loses nothing.
            try:
                from repro.registry.recorder import append_payload_records

                append_payload_records(registry_sidecar, key, payload,
                                       registry_ctx)
            except Exception:
                pass
        result_queue.put(("done", worker_id, key, payload))
        progress.key = None


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class _Worker:
    """Parent-side handle of one worker process."""

    worker_id: int
    slot: int
    process: "multiprocessing.Process"
    task_queue: "multiprocessing.Queue"
    #: This worker's private result/heartbeat channel (see
    #: ``_spawn_worker`` for why it must not be shared).
    result_queue: "multiprocessing.Queue" = None  # type: ignore[assignment]
    cell: Optional[CellSpec] = None
    #: Last heartbeat progress value and when it last *changed*.
    last_progress: object = None
    last_change: float = 0.0

    @property
    def idle(self) -> bool:
        return self.cell is None


class Supervisor:
    """Runs cells on a pool of supervised worker processes.

    ``on_result(key, payload)`` fires (in the parent) for every completed
    cell — the parallel engine checkpoints there.  ``on_quarantine(key,
    record)`` fires when a cell is poisoned.  ``on_event(message)``
    carries human-readable supervision events (crashes, kills, retries).
    """

    def __init__(
        self,
        cells: List[CellSpec],
        config: SupervisorConfig,
        identity: str = "sweep",
        partial_path_for: Optional[Callable[[int], str]] = None,
        on_result: Optional[Callable[[str, Dict[str, object]], None]] = None,
        on_quarantine: Optional[Callable[[str, Dict[str, object]], None]] = None,
        on_event: Optional[Callable[[str], None]] = None,
        registry_sidecar_for: Optional[Callable[[int], str]] = None,
        registry_ctx: Optional[Dict[str, object]] = None,
    ) -> None:
        self.config = config
        self.identity = identity
        self.partial_path_for = partial_path_for
        self.registry_sidecar_for = registry_sidecar_for
        self.registry_ctx = registry_ctx
        self.on_result = on_result
        self.on_quarantine = on_quarantine
        self.on_event = on_event

        self._cells: Dict[str, CellSpec] = {key: (key, fn, args)
                                            for key, fn, args in cells}
        self._pending: "deque[str]" = deque(key for key, _, _ in cells)
        self._deferred: List[Tuple[float, str]] = []  # (eligible_at, key)
        self._failures: Dict[str, List[CellFailure]] = {}
        self.outcome = SupervisorOutcome(
            stats=SupervisorStats(mode="parallel", jobs=config.jobs)
        )

        self._ctx = multiprocessing.get_context(config.resolved_start_method())
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._pool_failures = 0  # consecutive deaths without a completed cell

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the pool.  Raises on startup failure (caller may then
        degrade to the serial path — the run has not begun)."""
        for slot in range(self.config.jobs):
            self._spawn_worker(slot)

    def _spawn_worker(self, slot: int) -> _Worker:
        self._next_worker_id += 1
        worker_id = self._next_worker_id
        task_queue: multiprocessing.Queue = self._ctx.Queue()
        # One result queue PER worker, never shared.  A shared queue
        # serializes every worker's feeder thread through one
        # cross-process write lock, and that lock is a plain (non-robust)
        # POSIX semaphore: a worker SIGKILLed while its feeder holds it
        # leaves the lock held forever, silently wedging every *other*
        # worker's heartbeats and results.  With a dedicated queue a
        # dying worker can only poison its own channel, which the parent
        # discards when it reaps the death.
        result_queue: multiprocessing.Queue = self._ctx.Queue()
        partial = (self.partial_path_for(slot)
                   if self.partial_path_for is not None else None)
        sidecar = (self.registry_sidecar_for(slot)
                   if self.registry_sidecar_for is not None else None)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, slot, task_queue, result_queue,
                  self.config.heartbeat_interval_s, partial, self.identity,
                  sidecar, self.registry_ctx),
            name=f"sweep-worker-{slot}",
            daemon=True,
        )
        process.start()
        worker = _Worker(worker_id=worker_id, slot=slot, process=process,
                         task_queue=task_queue, result_queue=result_queue,
                         last_change=time.monotonic())
        self._workers[worker_id] = worker
        self.outcome.stats.workers_spawned += 1
        return worker

    def run(self) -> SupervisorOutcome:
        """Drive the pool until every cell is completed or quarantined."""
        try:
            self._loop()
        finally:
            self._shutdown()
        return self.outcome

    # -- main loop -------------------------------------------------------------

    def _accounted(self) -> int:
        return len(self.outcome.results) + len(self.outcome.quarantined)

    def _loop(self) -> None:
        total = len(self._cells)
        tick = max(0.02, self.config.heartbeat_interval_s / 2.0)
        while self._accounted() < total:
            now = time.monotonic()
            self._promote_deferred(now)
            self._assign_idle_workers()
            self._drain_messages(tick)
            now = time.monotonic()
            self._check_watchdog(now)
            self._check_liveness()

    def _promote_deferred(self, now: float) -> None:
        still_waiting: List[Tuple[float, str]] = []
        for eligible_at, key in self._deferred:
            if eligible_at <= now:
                self._pending.append(key)
            else:
                still_waiting.append((eligible_at, key))
        self._deferred = still_waiting

    def _assign_idle_workers(self) -> None:
        for worker in self._workers.values():
            if not worker.idle:
                continue
            key = self._next_runnable()
            if key is None:
                return
            worker.cell = self._cells[key]
            worker.last_progress = None
            worker.last_change = time.monotonic()
            worker.task_queue.put(worker.cell)

    def _next_runnable(self) -> Optional[str]:
        while self._pending:
            key = self._pending.popleft()
            if key in self.outcome.results or key in self.outcome.quarantined:
                continue  # late duplicate (e.g. a kill raced a result)
            return key
        return None

    def _drain_messages(self, timeout_s: float) -> None:
        # Sweep every worker's private channel; sleep one tick only when
        # the whole pool was silent, so a busy pool drains at full speed.
        drained_any = False
        for worker in list(self._workers.values()):
            drained_any |= self._drain_worker_queue(worker.result_queue)
        if not drained_any:
            time.sleep(timeout_s)

    def _drain_worker_queue(self, result_queue: "multiprocessing.Queue") -> bool:
        drained = False
        while True:
            try:
                message = result_queue.get_nowait()
            except queue_mod.Empty:
                return drained
            except (OSError, ValueError, EOFError):
                return drained  # channel torn down mid-drain
            drained = True
            self._handle_message(message)

    def _handle_message(self, message: Tuple[object, ...]) -> None:
        kind = message[0]
        worker_id = message[1]
        worker = self._workers.get(worker_id)  # None: stale (killed) worker
        now = time.monotonic()
        if kind == "ready":
            return
        if kind == "start":
            if worker is not None:
                worker.last_change = now
            return
        if kind == "hb":
            _, _, _key, progress = message
            if worker is not None and progress != worker.last_progress:
                worker.last_progress = progress
                worker.last_change = now
            return
        if kind == "done":
            _, _, key, payload = message
            self._complete(key, payload)  # accept even from stale workers
            if worker is not None:
                worker.cell = None
                worker.last_change = now
            return
        if kind == "fail":
            _, _, key, tb = message
            self.outcome.stats.cell_errors += 1
            if worker is not None:
                worker.cell = None
                worker.last_change = now
            self._record_failure(key, CellFailure("error", tb))
            return
        raise AssertionError(f"unknown worker message {kind!r}")

    def _complete(self, key: str, payload: Dict[str, object]) -> None:
        if key in self.outcome.results:
            return  # duplicate from a rescheduled + stale pair
        self.outcome.results[key] = payload
        self.outcome.quarantined.pop(key, None)
        self.outcome.stats.cells_completed += 1
        self._pool_failures = 0
        if self.on_result is not None:
            self.on_result(key, payload)

    # -- failure handling ------------------------------------------------------

    def _record_failure(self, key: str, failure: CellFailure) -> None:
        if key in self.outcome.results:
            return  # a parallel attempt already completed the cell
        attempts = self._failures.setdefault(key, [])
        attempts.append(failure)
        if len(attempts) >= self.config.max_cell_failures:
            record: Dict[str, object] = {
                "status": "QUARANTINED",
                "failures": [f.to_jsonable() for f in attempts],
                "traceback": attempts[-1].detail,
            }
            self.outcome.quarantined[key] = record
            self._emit(f"quarantined {key!r} after {len(attempts)} failures "
                       f"(last: {failure.kind})")
            if self.on_quarantine is not None:
                self.on_quarantine(key, record)
            return
        delay = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** (len(attempts) - 1)),
        )
        self.outcome.stats.retries += 1
        self._emit(f"rescheduling {key!r} in {delay:.2f}s "
                   f"(failure {len(attempts)}: {failure.kind})")
        self._deferred.append((time.monotonic() + delay, key))

    def _check_watchdog(self, now: float) -> None:
        deadline = self.config.stall_deadline_s
        for worker in list(self._workers.values()):
            if worker.idle or now - worker.last_change <= deadline:
                continue
            key = worker.cell[0] if worker.cell else "?"
            self.outcome.stats.cell_timeouts += 1
            timeout = CellTimeout(
                f"cell {key!r}: no sim progress for {deadline:.1f}s "
                f"(last heartbeat {worker.last_progress!r}); "
                f"killing worker {worker.worker_id}"
            )
            self._emit(str(timeout))
            self._kill_worker(worker)
            self._record_failure(key, CellFailure("timeout", str(timeout)))
            self._spawn_worker(worker.slot)

    def _check_liveness(self) -> None:
        for worker in list(self._workers.values()):
            if worker.process.is_alive():
                continue
            del self._workers[worker.worker_id]
            # Final best-effort drain: a "done" the worker delivered just
            # before dying must still count.
            self._drain_worker_queue(worker.result_queue)
            self._discard_queue(worker.result_queue)
            self.outcome.stats.worker_crashes += 1
            self._pool_failures += 1
            if worker.cell is not None:
                key = worker.cell[0]
                crash = WorkerCrash(
                    f"worker {worker.worker_id} died "
                    f"(exitcode {worker.process.exitcode}) running {key!r}"
                )
                self._emit(str(crash))
                self._record_failure(key, CellFailure("crash", str(crash)))
            else:
                self._emit(f"idle worker {worker.worker_id} died "
                           f"(exitcode {worker.process.exitcode})")
            if self._pool_failures > self.config.max_pool_failures:
                raise WorkerCrash(
                    f"worker pool unhealthy: {self._pool_failures} "
                    f"consecutive worker deaths without a completed cell; "
                    f"aborting (completed cells are checkpointed)"
                )
            self._spawn_worker(worker.slot)

    # -- teardown --------------------------------------------------------------

    def _kill_worker(self, worker: _Worker) -> None:
        del self._workers[worker.worker_id]
        with_suppress_kill(worker.process)
        # A watchdog-killed worker's channel is stale by definition (no
        # progress for a full deadline) — discard it unread.
        self._discard_queue(worker.result_queue)

    @staticmethod
    def _discard_queue(result_queue: "multiprocessing.Queue") -> None:
        try:
            result_queue.cancel_join_thread()
            result_queue.close()
        except (OSError, ValueError):
            pass

    def _shutdown(self) -> None:
        for worker in self._workers.values():
            try:
                worker.task_queue.put_nowait(None)
            except (OSError, ValueError, queue_mod.Full):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers.values():
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                with_suppress_kill(worker.process)
            self._discard_queue(worker.result_queue)
        self._workers.clear()

    def _emit(self, message: str) -> None:
        if self.on_event is not None:
            self.on_event(message)


def with_suppress_kill(process: "multiprocessing.Process") -> None:
    """SIGKILL a worker and reap it, ignoring already-dead races."""
    try:
        process.kill()
    except (OSError, ValueError, AttributeError):
        pass
    process.join(timeout=2.0)
