"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run APP [--variant V] [--disks N] [--cache-mb MB] [--scale S] [--ncpus N]``
    Run one benchmark and print its result record.

``compare APP ...``
    Run all three variants of one or more apps and print a Figure 3-style
    comparison.

``transform APP [--optimize]``
    Run the SpecHint tool over a benchmark binary and print the Table 3
    statistics plus a disassembly excerpt around the shadow boundary.

``analyze APP [--json] [--lint] [--security]``
    Run the static-analysis pipeline (CFG, dataflow, abstract
    interpretation) over a benchmark binary and print the store/transfer
    classification report; ``--lint`` exits non-zero on error findings.
    ``--security`` runs the speculation-security taint lint instead:
    it proves (or refutes, with a witness def-use chain) that no
    secret-marked data region can flow into the operands of a disclosed
    I/O hint; with ``--lint`` any leak exits non-zero.

``sweep {disks,cache,ratio,degraded}``
    Regenerate one of the paper's sweep experiments (Figure 5 / Table 7 /
    Figure 6) and print the series; ``degraded`` sweeps the storage fault
    regime (healthy vs. disk-death vs. rebuild-storm) instead.

``trace APP [--categories C,...] [--export {jsonl,chrome}] [--out PATH]
[--summary] [--top-hints N]``
    Run one benchmark under the event tracer and export / summarize the
    trace: stall breakdown, hint lead times, prefetch readiness, per-disk
    utilization.  ``--export chrome`` writes a Chrome ``trace_event``
    file that loads directly into Perfetto (https://ui.perfetto.dev).

``fuzz [--budget N] [--seed S] [--jobs N] [--apps A,B] [--scale S]
[--coverage-report PATH] [--failures-dir DIR] [--max-shrink N]``
    Chaos fuzzing: generate ``--budget`` randomized fault schedules,
    run each as a spec-off/spec-on cell under the invariant monitors,
    print the fault-space coverage ledger, and shrink any failing cell
    to a minimal reproducer JSON in ``--failures-dir``.

``fuzz replay FILE``
    Re-run one reproducer JSON (e.g. from ``tests/corpus/``) under the
    monitors; exits non-zero while the recorded violation still trips.

``runs {list,show,diff,similar,lineage,gc,regressions} --registry PATH``
    Query the persistent run registry: list and inspect recorded runs,
    diff two runs, rank past runs by similarity, walk sweep/campaign
    lineage, prune old populations, and flag performance regressions
    against each run's matched baseline population (exit 1 on drift).
    Recording happens via ``--registry PATH`` on ``run`` / ``sweep`` /
    ``trace`` / ``fuzz``; ``run --auto-tune`` additionally picks
    speculation parameters from the best similar past run and records
    replayable provenance (``run --tuned-from RUN``).

``paper``
    Print the paper's published reference numbers.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.faults.plan import PROFILES
from repro.harness import paper
from repro.harness.config import ALL_APPS, ExperimentConfig, Variant
from repro.harness.experiments import (
    run_cache_size_sweep,
    run_cpu_ratio_sweep,
    run_degraded_sweep,
    run_disk_sweep,
)
from repro.harness.runner import run_experiment
from repro.harness.tables import (
    format_degraded_sweep,
    format_improvement_series,
    format_table7,
    format_table8,
)
from repro.params import ArrayParams, SystemConfig


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    system = SystemConfig(
        array=ArrayParams(ndisks=args.disks),
        ncpus=args.ncpus,
        seed=getattr(args, "seed", 1999),
    )
    chaos = getattr(args, "chaos", None)
    return ExperimentConfig(
        app=args.app,
        system=system,
        cache_paper_mb=args.cache_mb,
        workload_scale=args.scale,
        fault_profile=chaos if chaos not in (None, "none") else None,
        fault_seed=getattr(args, "fault_seed", 7),
    )


def _record_in_registry(
    registry_path: str,
    payload: dict,
    ctx: Optional[dict] = None,
    announce: bool = True,
) -> List[str]:
    """Record one payload in the registry; returns the new run ids."""
    from repro.registry.recorder import record_payload
    from repro.registry.store import RunRegistry

    registry = RunRegistry.open(registry_path)
    try:
        ids = record_payload(registry, None, payload, ctx)
        registry.compact()
    finally:
        registry.close()
    if announce and ids:
        print(f"registry: recorded {ids[0]} in {registry_path}")
    return ids


def _auto_tune(cfg: ExperimentConfig, registry_path: str) -> ExperimentConfig:
    """``run --auto-tune``: propose speculation tunables from the registry."""
    from repro.registry.fingerprint import chaos_key
    from repro.registry.store import RunRegistry
    from repro.registry.tuner import AutoTuner, apply_proposal

    registry = RunRegistry.open(registry_path)
    try:
        proposal = AutoTuner(registry).propose(
            cfg.app, chaos_key(cfg.fault_profile)
        )
    finally:
        registry.close()
    if proposal is None:
        print("auto-tune: registry has no usable past runs; "
              "keeping default speculation parameters")
        return cfg
    print(f"auto-tune: {proposal.basis}")
    print(f"  source runs: {', '.join(proposal.source_run_ids)}")
    for name, value in sorted(proposal.spec_params.items()):
        print(f"  {name} = {value}")
    return apply_proposal(cfg, proposal)  # type: ignore[return-value]


def _tune_from_provenance(
    cfg: ExperimentConfig, registry_path: str, run_ref: str
) -> ExperimentConfig:
    """``run --tuned-from RUN``: replay a recorded tuned configuration."""
    from repro.errors import RegistryError
    from repro.registry.store import RunRegistry
    from repro.registry.tuner import apply_provenance

    registry = RunRegistry.open(registry_path)
    try:
        record = registry.find(run_ref)
    finally:
        registry.close()
    if record.tuning is None:
        raise RegistryError(
            f"run {record.run_id} carries no tuning provenance; only runs "
            "recorded with --auto-tune can seed --tuned-from"
        )
    print(f"replaying tuning provenance of {record.run_id}")
    return apply_provenance(cfg, record.tuning)  # type: ignore[return-value]


def cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "oracle", False):
        return _run_oracle(args)
    cfg = _base_config(args).with_(variant=Variant(args.variant))
    registry_path = getattr(args, "registry", None)
    if getattr(args, "auto_tune", False) or getattr(args, "tuned_from", None):
        if registry_path is None:
            raise ReproError(
                "--auto-tune and --tuned-from require --registry PATH"
            )
    if getattr(args, "tuned_from", None):
        cfg = _tune_from_provenance(cfg, registry_path, args.tuned_from)
    elif getattr(args, "auto_tune", False):
        cfg = _auto_tune(cfg, registry_path)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.sim.clock import SimClock
        from repro.trace import Tracer, export_to_path

        tracer = Tracer(SimClock())
        result = run_experiment(cfg, tracer=tracer)
        export_to_path(tracer, trace_out, "jsonl")
        print(f"trace written to {trace_out} ({len(tracer):,} events)")
    else:
        result = run_experiment(cfg)
    print(result.summary())
    print(f"  elapsed:          {result.elapsed_s:.3f} s simulated")
    print(f"  reads:            {result.read_calls} calls, "
          f"{result.read_blocks} blocks, {result.read_bytes:,} bytes")
    print(f"  hinted:           {result.pct_calls_hinted:.1f}% of calls, "
          f"{result.pct_bytes_hinted:.1f}% of bytes")
    print(f"  prefetched:       {result.prefetched_blocks} blocks "
          f"({result.prefetched_fully} fully, "
          f"{result.prefetched_partially} partially, "
          f"{result.prefetched_unused} unused)")
    if result.variant == "speculating":
        print(f"  speculation:      {result.spec_hints_issued} hints, "
              f"{result.spec_restarts} restarts, "
              f"{result.spec_signals} signals, "
              f"dilation {result.dilation_factor:.2f}")
        print(f"  inaccurate hints: {result.inaccurate_hints}")
    if result.fault_profile is not None:
        print(f"  chaos:            profile {result.fault_profile}, "
              f"{result.disk_faults} disk faults, {result.io_retries} retries, "
              f"{result.io_timeouts} timeouts, "
              f"{result.prefetches_dropped} prefetches dropped")
        if result.watchdog_tripped:
            print(f"  watchdog:         tripped ({result.watchdog_tripped}); "
                  f"speculation disabled, run completed vanilla")
        if result.disk_deaths:
            print(f"  degraded mode:    {result.disk_deaths} disk death(s), "
                  f"{result.degraded_reads} degraded reads, "
                  f"{result.reconstructed_blocks} blocks reconstructed")
            print(f"  hedging:          {result.hedges_issued} issued, "
                  f"{result.hedges_won} won")
            if result.rebuild_completed:
                done_s = result.rebuild_completed_cycle / result.cpu_hz
                print(f"  rebuild:          complete at {done_s:.3f} s "
                      f"({result.rebuild_blocks} blocks resilvered)")
            else:
                print("  rebuild:          INCOMPLETE")
            print(f"  load shedding:    {result.prefetches_shed_degraded} "
                  f"prefetches shed while degraded")
        for name, value in result.fault_events().items():
            print(f"    {name:40s} {value}")
        per_disk = result.per_disk_io_counters()
        if per_disk:
            for disk_id in sorted(per_disk):
                counters = per_disk[disk_id]
                detail = ", ".join(f"{name} {counters[name]}"
                                   for name in sorted(counters))
                print(f"    disk {disk_id}: {detail}")
    if registry_path is not None:
        _record_in_registry(registry_path, result.to_jsonable(),
                            {"kind": "run"})
    return 0


def _run_oracle(args: argparse.Namespace) -> int:
    """``run APP --oracle``: the differential correctness oracle.

    With ``--chaos`` set the oracle checks that one profile; without it,
    the fault-free baseline plus every built-in chaos profile.
    """
    from repro.harness.checkpoint import atomic_write_json
    from repro.harness.oracle import ORACLE_PROFILES, run_oracle

    system = SystemConfig(
        array=ArrayParams(ndisks=args.disks), ncpus=args.ncpus,
        seed=getattr(args, "seed", 1999),
    )
    chaos = getattr(args, "chaos", None)
    if chaos is not None:
        profiles = (chaos if chaos != "none" else None,)
    else:
        profiles = ORACLE_PROFILES
    report = run_oracle(
        (args.app,),
        profiles=profiles,
        workload_scale=args.scale,
        fault_seed=getattr(args, "fault_seed", 7),
        system=system,
        trace_dir=getattr(args, "trace_out", None),
        jobs=getattr(args, "jobs", 1),
        registry_path=getattr(args, "registry", None),
    )
    for cell in report.cells:
        verdict = "ok" if cell.passed else "MISMATCH"
        line = f"  {cell.app:12s} {cell.profile_name:18s} {verdict}"
        if not cell.passed:
            line += f"  ({cell.detail})"
        print(line)
    print(report.summary())
    report_path = getattr(args, "oracle_report", None)
    if report_path:
        atomic_write_json(report_path, report.to_jsonable())
        print(f"oracle report written to {report_path}")
    return 0 if report.passed else 1


def cmd_compare(args: argparse.Namespace) -> int:
    for app in args.apps:
        base = _base_config(argparse.Namespace(
            app=app, disks=args.disks, ncpus=args.ncpus,
            cache_mb=args.cache_mb, scale=args.scale,
            chaos=getattr(args, "chaos", None),
            fault_seed=getattr(args, "fault_seed", 7),
        ))
        results = {
            variant: run_experiment(base.with_(variant=variant))
            for variant in Variant
        }
        original = results[Variant.ORIGINAL]
        print(f"\n{app} (original {original.elapsed_s:.3f} s):")
        for variant in (Variant.SPECULATING, Variant.MANUAL):
            result = results[variant]
            print(f"  {variant.value:12s} {result.elapsed_s:8.3f} s  "
                  f"({result.improvement_over(original):5.1f}% improvement, "
                  f"{result.pct_calls_hinted:5.1f}% of calls hinted)")
    return 0


def _build_app_binary(app: str, scale: float) -> "object":
    """Assemble one example app (or analysis fixture) without running it."""
    from repro.fs.filesystem import FileSystem

    from repro.analysis.fixtures import FIXTURES

    if app in FIXTURES:
        return FIXTURES[app]()
    from repro.harness.runner import _BUILDERS

    return _BUILDERS[app](FileSystem(), scale, False)


def cmd_transform(args: argparse.Namespace) -> int:
    from repro.spechint.tool import SpecHintTool
    from repro.vm.disasm import listing

    binary = _build_app_binary(args.app, args.scale)
    transformed = SpecHintTool(optimize=args.optimize).transform(binary)
    report = transformed.spec_meta.report

    print(f"transformed {report.binary_name} in "
          f"{report.modification_time_s * 1000:.1f} ms")
    print(f"  instructions:   {report.original_insns} original + "
          f"{report.shadow_insns} shadow")
    print(f"  wrapped:        {report.loads_wrapped} loads, "
          f"{report.stores_wrapped} stores "
          f"({report.stack_relative_skipped} stack-relative skipped)")
    print(f"  redirected:     {report.static_transfers_redirected} static, "
          f"{report.dynamic_transfers_routed} dynamic")
    print(f"  jump tables:    {report.jump_tables_remapped} remapped, "
          f"{report.jump_tables_unrecognized} unrecognized")
    print(f"  reads -> hints: {report.reads_substituted}; output calls "
          f"stripped: {report.output_calls_stripped}")
    print(f"  size:           {report.original_size_bytes:,} -> "
          f"{report.transformed_size_bytes:,} bytes "
          f"(+{report.size_increase_pct:.0f}%)")
    if report.analysis_applied:
        print(f"  analysis:       {report.stores_elided} store wrappers "
              f"elided ({report.store_elision_pct:.0f}%), "
              f"{report.loads_unchecked_dead} load checks dropped, "
              f"{report.transfers_statically_resolved} transfers resolved; "
              f"check cycles {report.check_cycles_baseline} -> "
              f"{report.check_cycles_emitted} "
              f"(-{report.check_cycles_saved_pct:.0f}%)")
    if args.disasm:
        boundary = transformed.spec_meta.shadow_base
        lo = max(0, boundary - args.disasm // 2)
        print("\n" + listing(transformed, lo, boundary + args.disasm // 2))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """``repro analyze APP``: run the static-analysis pipeline and report.

    ``--lint`` turns error-severity findings into a non-zero exit: a
    binary with a computed transfer that can never be mapped, or a
    speculation-reachable syscall the runtime has no policy for, will
    never benefit from speculation and should be flagged in CI.
    """
    import json

    from repro.analysis.driver import analyze_binary

    binary = _build_app_binary(args.app, args.scale)
    analysis = analyze_binary(binary, map_all_addresses=args.map_all)

    if getattr(args, "security", False):
        from repro.analysis.taint import analyze_security

        plan = analyze_security(binary, analysis=analysis)
        if args.json:
            print(json.dumps(plan.to_jsonable(), indent=2, sort_keys=True))
        else:
            print(plan.format_text())
        if args.lint:
            findings = plan.lint()
            if findings:
                print(f"\nsecurity lint: {len(findings)} leak(s)",
                      file=sys.stderr)
                return 1
            print("\nsecurity lint: ok (no secret-to-hint flows)")
        return 0

    if args.json:
        print(json.dumps(analysis.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(analysis.format_text())

    if args.lint:
        errors = analysis.lint_errors
        if errors:
            print(f"\nlint: {len(errors)} error(s), "
                  f"{len(analysis.lint) - len(errors)} warning(s)",
                  file=sys.stderr)
            return 1
        print(f"\nlint: ok ({len(analysis.lint)} warning(s))")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    checkpoint = getattr(args, "checkpoint", None)
    jobs = getattr(args, "jobs", 1)
    registry = getattr(args, "registry", None)
    if checkpoint is None and getattr(args, "resume", False):
        raise ReproError("--resume requires --checkpoint PATH")
    if checkpoint is not None or jobs > 1 or registry is not None:
        # Crash-safe / parallel path: run cell by cell, checkpointing each
        # result atomically; --resume restores completed cells after a
        # kill; --jobs N shards cells across the supervised worker pool.
        from repro.harness.experiments import run_sweep_resumable
        from repro.harness.report import format_supervisor_stats

        def progress(key: str, resumed: bool) -> None:
            print(f"  [{'resumed' if resumed else 'ran    '}] {key}")

        stats_out: dict = {}
        sweep = run_sweep_resumable(
            args.kind,
            workload_scale=args.scale,
            checkpoint_path=checkpoint,
            resume=getattr(args, "resume", False),
            progress=progress,
            jobs=jobs,
            stats_out=stats_out,
            registry_path=registry,
        )
        if stats_out:
            print(format_supervisor_stats(stats_out))
    elif args.kind == "disks":
        sweep = run_disk_sweep((1, 2, 4, 10), workload_scale=args.scale)
    elif args.kind == "cache":
        sweep = run_cache_size_sweep((6.0, 12.0, 32.0),
                                     workload_scale=args.scale)
    elif args.kind == "degraded":
        sweep = run_degraded_sweep(workload_scale=args.scale)
    else:
        sweep = run_cpu_ratio_sweep((1, 3, 5, 9), workload_scale=args.scale)

    if args.kind == "disks":
        print(format_table8(sweep))
        print()
        print(format_improvement_series(sweep, "number of disks"))
    elif args.kind == "cache":
        print(format_table7(sweep))
    elif args.kind == "degraded":
        print(format_degraded_sweep(sweep))
    else:
        print(format_improvement_series(sweep, "processor/disk speed ratio"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace APP``: run under the tracer, export and summarize.

    The tracer only reads the simulation clock, so the traced run's
    cycle count is identical to an untraced run of the same
    configuration — what it shows is what an ordinary run does.
    """
    from repro.harness.runner import run_experiment_with_system
    from repro.sim.clock import SimClock
    from repro.trace import (
        TraceAnalyzer,
        Tracer,
        export_to_path,
        parse_categories,
        stall_breakdown,
    )

    categories = (
        parse_categories(args.categories) if args.categories else None
    )
    tracer = Tracer(SimClock(), categories=categories)
    cfg = _base_config(args).with_(variant=Variant(args.variant))
    result, system = run_experiment_with_system(cfg, tracer=tracer)

    analyzer = TraceAnalyzer(
        tracer,
        lifecycle=getattr(system.manager, "lifecycle", None),
        breakdown=stall_breakdown(system.kernel),
        result=result,
    )

    out = args.out
    if out is None:
        suffix = "json" if args.export == "chrome" else "jsonl"
        out = f"trace-{args.app}-{args.variant}.{suffix}"
    export_to_path(tracer, out, args.export)
    print(f"{result.summary()}")
    print(f"trace written to {out} ({len(tracer):,} events, "
          f"{tracer.dropped:,} dropped)")
    if args.export == "chrome":
        print("  open in Perfetto: https://ui.perfetto.dev -> Open trace file")

    if args.summary:
        print()
        print(analyzer.render_summary())

    if args.top_hints:
        records = analyzer.top_hints(args.top_hints)
        if records:
            print(f"\ntop {len(records)} hints by lead time:")
            print(f"  {'seq':>6} {'ino':>5} {'block':>7} {'lead cycles':>12} "
                  f"{'ready':>6}")
            for record in records:
                print(f"  {record.seq:>6} {record.key[0]:>5} "
                      f"{record.key[1]:>7} {record.lead_cycles:>12,} "
                      f"{'yes' if record.ready_before_demand else 'no':>6}")
        else:
            print("\nno consumed hints recorded "
                  "(original variant, or hint categories filtered out)")

    registry_path = getattr(args, "registry", None)
    if registry_path is not None:
        _record_in_registry(
            registry_path, result.to_jsonable(),
            {"kind": "run", "trace_summary": analyzer.summary()},
        )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz``: a chaos campaign, or ``fuzz replay FILE``."""
    import json as _json
    import os

    from repro.faults.shrink import Reproducer, shrink_case
    from repro.harness.fuzz import replay_case, run_fuzz, run_fuzz_case

    if getattr(args, "fuzz_command", None) == "replay":
        reproducer = Reproducer.load(args.file)
        result = replay_case(
            reproducer.case, workload_scale=reproducer.workload_scale
        )
        label = reproducer.monitor or "any"
        print(f"replay {reproducer.case.key} (recorded monitor: {label})")
        if reproducer.note:
            print(f"  note: {reproducer.note}")
        if result.passed:
            print("  clean: no invariant violations")
            return 0
        for violation in result.violations:
            print(f"  {violation}")
        return 1

    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint is None and args.resume:
        raise ReproError("--resume requires --checkpoint PATH")

    def progress(key: str, resumed: bool) -> None:
        print(f"  [{'resumed' if resumed else 'ran    '}] {key}")

    report = run_fuzz(
        args.budget, seed=args.seed, apps=apps, jobs=args.jobs,
        workload_scale=args.scale, checkpoint_path=checkpoint,
        resume=args.resume, progress=progress,
        registry_path=getattr(args, "registry", None),
    )
    print()
    print(report.ledger.format_text())
    print()
    print(report.summary())

    if args.coverage_report is not None:
        payload = {
            "seed": report.seed,
            "budget": report.budget,
            "digest": report.digest,
            "passed": report.passed,
            "coverage": report.ledger.to_jsonable(),
        }
        with open(args.coverage_report, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"coverage report written to {args.coverage_report}")

    failures = report.failures()
    shrinkable = [
        cell for cell in failures
        if cell.violations and cell.violations[0].monitor != "supervisor"
    ]
    for cell in shrinkable[:args.max_shrink]:
        monitor = cell.violations[0].monitor
        print(f"\nshrinking {cell.key} (monitor: {monitor})...")

        def evaluate(candidate):
            return run_fuzz_case(
                candidate, workload_scale=args.scale
            ).violations

        shrunk = shrink_case(cell.case, monitor, evaluate)
        print(f"  {len(shrunk.events)} fault event(s) remain "
              f"after {shrunk.evaluations} evaluation(s): "
              f"{', '.join(shrunk.events) or 'none'}")
        os.makedirs(args.failures_dir, exist_ok=True)
        path = os.path.join(
            args.failures_dir,
            f"repro-{args.seed}-{shrunk.case.index:04d}.json",
        )
        Reproducer(
            case=shrunk.case,
            monitor=monitor,
            detail=str(cell.violations[0]),
            workload_scale=args.scale,
            note=f"shrunk from campaign --seed {args.seed} "
                 f"--budget {args.budget}",
        ).save(path)
        print(f"  reproducer written to {path}")

    return 0 if report.passed else 1


def _runs_list(args: argparse.Namespace, registry) -> int:
    records = registry.query(
        app=getattr(args, "app", None),
        variant=getattr(args, "variant", None),
        kind=getattr(args, "kind", None),
        chaos_profile=getattr(args, "chaos", None),
        limit=getattr(args, "limit", None),
    )
    if not records:
        print("registry is empty (or no record matches the filters)")
        return 0
    print(f"  {'run id':24s} {'kind':13s} {'app':10s} {'variant':12s} "
          f"{'seed':>6} {'chaos':18s} {'cycles':>12}")
    for record in records:
        values = record.metric_values()
        cycles = f"{int(values['elapsed_cycles']):,}" if values else "-"
        print(f"  {record.run_id:24s} {record.kind:13s} "
              f"{record.app or '-':10s} {record.variant or '-':12s} "
              f"{record.seed:>6} {record.chaos_profile:18s} {cycles:>12}")
    print(f"{len(records)} record(s)")
    return 0


def _runs_show(args: argparse.Namespace, registry) -> int:
    import json

    record = registry.find(args.run)
    print(json.dumps(record.to_jsonable(), indent=2, sort_keys=True))
    return 0


def _runs_diff(args: argparse.Namespace, registry) -> int:
    left = registry.find(args.run_a)
    right = registry.find(args.run_b)
    print(f"diff {left.run_id} -> {right.run_id}")
    for name in ("app", "variant", "kind", "chaos_profile", "params_digest",
                 "seed", "code_version"):
        a, b = getattr(left, name), getattr(right, name)
        marker = " " if a == b else "*"
        print(f"  {marker} {name:20s} {a!r:>24}  {b!r}")
    lv, rv = left.metric_values(), right.metric_values()
    if lv and rv:
        for metric in sorted(lv):
            a, b = lv[metric], rv[metric]
            drift = f"{100.0 * (b - a) / a:+.1f}%" if a else "n/a"
            print(f"    {metric:26s} {a:>14.1f}  {b:>14.1f}  {drift}")
    lp = (left.result or {}).get("spec_params") or {}
    rp = (right.result or {}).get("spec_params") or {}
    for name in sorted(set(lp) | set(rp)):
        if lp.get(name) != rp.get(name):
            print(f"    spec_params.{name}: {lp.get(name)!r} -> "
                  f"{rp.get(name)!r}")
    return 0


def _runs_similar(args: argparse.Namespace, registry) -> int:
    from repro.registry.similarity import similar_runs

    target = registry.find(args.run)
    neighbors = similar_runs(registry, target, limit=args.limit)
    if not neighbors:
        print("no other runs in the registry to compare against")
        return 0
    print(f"runs most similar to {target.run_id}:")
    for neighbor in neighbors:
        print(f"  {neighbor.record.run_id}  score {neighbor.score:.3f}  "
              f"({'; '.join(neighbor.why)})")
    return 0


def _runs_lineage(args: argparse.Namespace, registry) -> int:
    view = registry.lineage(args.run)

    def _line(node: dict, depth: int) -> None:
        label = node.get("cell_key") or node["kind"]
        prefix = "" if depth == 0 else "  " * depth + "`-> "
        print(f"{prefix}{node['run_id']}  [{node['kind']}] {label}")

    depth = 0
    for ancestor in reversed(view["ancestors"]):
        _line(ancestor, depth)
        depth += 1

    def _render(node: dict, depth: int) -> None:
        _line(node, depth)
        for child in node["children"]:
            _render(child, depth + 1)

    _render(view["tree"], depth)
    return 0


def _runs_gc(args: argparse.Namespace, registry) -> int:
    pruned = registry.gc(keep=args.keep, dry_run=args.dry_run)
    verb = "would prune" if args.dry_run else "pruned"
    print(f"{verb} {len(pruned)} record(s) "
          f"(keeping {args.keep} per population)")
    for run_id in pruned:
        print(f"  {run_id}")
    return 0


def _runs_regressions(args: argparse.Namespace, registry) -> int:
    from repro.registry.regression import (
        check_all,
        check_run,
        parse_match_keys,
    )

    match_keys = parse_match_keys(getattr(args, "match", None))
    if getattr(args, "run", None):
        candidate = registry.find(args.run)
        report = check_run(registry, candidate, match_keys,
                           min_baseline=args.min_baseline)
    else:
        report = check_all(registry, match_keys,
                           min_baseline=args.min_baseline)
    print(f"checked {report.checked} run(s) against matched baselines "
          f"({report.skipped_no_baseline} without a large-enough "
          f"population; match keys: {','.join(match_keys)})")
    if report.clean:
        print("no regressions detected")
        return 0
    for finding in report.findings:
        print(f"  REGRESSION: {finding.describe()}")
    return 1


def cmd_runs(args: argparse.Namespace) -> int:
    """``repro runs ...``: query the persistent run registry."""
    from repro.registry.store import RunRegistry

    handlers = {
        "list": _runs_list,
        "show": _runs_show,
        "diff": _runs_diff,
        "similar": _runs_similar,
        "lineage": _runs_lineage,
        "gc": _runs_gc,
        "regressions": _runs_regressions,
    }
    registry = RunRegistry.open(args.registry)
    try:
        return handlers[args.runs_command](args, registry)
    finally:
        registry.close()


def cmd_paper(args: argparse.Namespace) -> int:
    print("Published results (Chang & Gibson, OSDI 1999):")
    print("\nFigure 3 - % improvement (speculating / manual):")
    for app, (spec, manual) in paper.FIG3_IMPROVEMENT.items():
        print(f"  {app:8s} {spec:5.0f}% / {manual:5.0f}%")
    print("\nSection 4.4 dilation factors:")
    for app, value in paper.SECTION44_DILATION.items():
        print(f"  {app:8s} {value}")
    print("\nTable 4 inaccurate hints (speculating):")
    for app, row in paper.TABLE4_SPECULATING.items():
        print(f"  {app:8s} {row[3]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecHint reproduction (Chang & Gibson, OSDI 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_app: bool = True) -> None:
        if with_app:
            p.add_argument("app", choices=ALL_APPS)
        p.add_argument("--disks", type=int, default=4)
        p.add_argument("--cache-mb", type=float, default=12.0,
                       help="file cache size in the paper's MB")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor")
        p.add_argument("--ncpus", type=int, default=1, choices=(1, 2))
        p.add_argument("--chaos", default=None, choices=sorted(PROFILES),
                       metavar="PROFILE",
                       help="run under a fault-injection profile: "
                            + ", ".join(sorted(PROFILES)))
        p.add_argument("--fault-seed", type=int, default=7, dest="fault_seed",
                       help="seed for the fault decision streams")
        p.add_argument("--seed", type=int, default=1999,
                       help="system seed (file layout jitter); vary it to "
                            "build a baseline population in the registry")
        p.add_argument("--registry", default=None, metavar="PATH",
                       help="record this run in the persistent run registry "
                            "at PATH (.jsonl = append log, else SQLite)")

    run_p = sub.add_parser("run", help="run one benchmark variant")
    common(run_p)
    run_p.add_argument("--variant", default="speculating",
                       choices=[v.value for v in Variant])
    run_p.add_argument("--oracle", action="store_true",
                       help="differential correctness oracle: run spec-on "
                            "vs spec-off and assert identical output and "
                            "demand-read sequences (all chaos profiles, or "
                            "just the one named by --chaos)")
    run_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="with --oracle: run oracle cells on N "
                            "supervised worker processes; 1 = serial")
    run_p.add_argument("--oracle-report", default=None, metavar="PATH",
                       dest="oracle_report",
                       help="write the oracle's JSON report to PATH")
    run_p.add_argument("--trace-out", default=None, metavar="PATH",
                       dest="trace_out",
                       help="with --oracle: directory for JSONL trace dumps "
                            "of any diverging cell (both variants); without: "
                            "write this run's full JSONL trace to PATH")
    run_p.add_argument("--auto-tune", action="store_true", dest="auto_tune",
                       help="ask the registry's auto-tuner for speculation "
                            "parameters learned from similar past runs "
                            "(requires --registry; provenance is recorded "
                            "on the result)")
    run_p.add_argument("--tuned-from", default=None, metavar="RUN",
                       dest="tuned_from",
                       help="replay the tuning provenance recorded on past "
                            "run RUN (id prefix ok; requires --registry)")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="compare all variants")
    cmp_p.add_argument("apps", nargs="+", choices=ALL_APPS)
    common(cmp_p, with_app=False)
    cmp_p.set_defaults(func=cmd_compare)

    tr_p = sub.add_parser("transform", help="show SpecHint tool output")
    tr_p.add_argument("app", choices=ALL_APPS)
    tr_p.add_argument("--scale", type=float, default=1.0)
    tr_p.add_argument("--optimize", action="store_true",
                      help="apply the static-analysis elision plan")
    tr_p.add_argument("--disasm", type=int, default=0, metavar="N",
                      help="print N listing lines around the shadow boundary")
    tr_p.set_defaults(func=cmd_transform)

    an_p = sub.add_parser(
        "analyze",
        help="static analysis: CFG, dataflow, store classes, transfers",
    )
    from repro.analysis.fixtures import FIXTURES

    an_p.add_argument("app", choices=ALL_APPS + tuple(sorted(FIXTURES)))
    an_p.add_argument("--scale", type=float, default=1.0)
    an_p.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")
    an_p.add_argument("--lint", action="store_true",
                      help="exit non-zero when any error-severity finding "
                           "exists (unmappable transfers, unpolicied "
                           "speculation-reachable syscalls; with "
                           "--security: any secret-to-hint flow)")
    an_p.add_argument("--security", action="store_true",
                      help="run the speculation-security taint lint: prove "
                           "no secret-marked data region can influence the "
                           "(ino, offset, length) operands of a disclosed "
                           "I/O hint")
    an_p.add_argument("--map-all", action="store_true", dest="map_all",
                      help="analyze under the map-all-addresses ablation "
                           "(reports only; the elision plan is empty)")
    an_p.set_defaults(func=cmd_analyze)

    sw_p = sub.add_parser("sweep", help="regenerate a sweep experiment")
    sw_p.add_argument("kind", choices=("disks", "cache", "ratio", "degraded"))
    sw_p.add_argument("--scale", type=float, default=1.0)
    sw_p.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="checkpoint finished cells to PATH (atomic "
                           "write-then-rename after every cell)")
    sw_p.add_argument("--resume", action="store_true",
                      help="restore completed cells from --checkpoint "
                           "instead of re-running them")
    sw_p.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard sweep cells across N supervised worker "
                           "processes (crashed/hung cells are rescheduled, "
                           "poisoned cells quarantined); 1 = serial")
    sw_p.add_argument("--registry", default=None, metavar="PATH",
                      help="record every sweep cell (plus a sweep lineage "
                           "record) in the run registry at PATH")
    sw_p.set_defaults(func=cmd_sweep)

    trace_p = sub.add_parser(
        "trace",
        help="run one benchmark under the event tracer and export/summarize",
    )
    common(trace_p)
    trace_p.add_argument("--variant", default="speculating",
                         choices=[v.value for v in Variant])
    trace_p.add_argument("--categories", default=None, metavar="C,...",
                         help="record only these categories "
                              "(kernel, sched, spec, hint, tip, cache, "
                              "storage); default: all")
    trace_p.add_argument("--export", default="jsonl",
                         choices=("jsonl", "chrome"),
                         help="output format: one JSON object per event, or "
                              "a Chrome trace_event file for Perfetto")
    trace_p.add_argument("--out", default=None, metavar="PATH",
                         help="output path (default: "
                              "trace-<app>-<variant>.<ext>)")
    trace_p.add_argument("--summary", action="store_true",
                         help="print the stall breakdown, hint lead times, "
                              "prefetch readiness and disk utilization")
    trace_p.add_argument("--top-hints", type=int, default=0, metavar="N",
                         dest="top_hints",
                         help="list the N consumed hints with the longest "
                              "lead times")
    trace_p.set_defaults(func=cmd_trace)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="chaos fuzzing: generated fault schedules under the "
             "invariant monitors",
    )
    fuzz_p.add_argument("--budget", type=int, default=50,
                        help="number of fault schedules to generate and run")
    fuzz_p.add_argument("--seed", type=int, default=7,
                        help="campaign seed; same seed = same schedules, "
                             "same coverage ledger, same cell digests")
    fuzz_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard fuzz cells across N supervised worker "
                             "processes (crashed/hung cells quarantined); "
                             "1 = serial")
    fuzz_p.add_argument("--apps", default="agrep", metavar="A,B",
                        help="comma-separated benchmark apps to fuzz")
    fuzz_p.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor per cell")
    fuzz_p.add_argument("--coverage-report", default=None, metavar="PATH",
                        dest="coverage_report",
                        help="write the fault-space coverage ledger and "
                             "campaign digest as JSON to PATH")
    fuzz_p.add_argument("--failures-dir", default="fuzz-failures",
                        metavar="DIR", dest="failures_dir",
                        help="directory for shrunk reproducer JSONs of "
                             "failing cells")
    fuzz_p.add_argument("--max-shrink", type=int, default=3,
                        metavar="N", dest="max_shrink",
                        help="shrink at most N failing cells")
    fuzz_p.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="checkpoint finished cells to PATH")
    fuzz_p.add_argument("--resume", action="store_true",
                        help="restore completed cells from --checkpoint")
    fuzz_p.add_argument("--registry", default=None, metavar="PATH",
                        help="record every fuzz case (plus a campaign "
                             "lineage record) in the run registry at PATH")
    fuzz_p.set_defaults(func=cmd_fuzz, fuzz_command=None)
    fuzz_sub = fuzz_p.add_subparsers(dest="fuzz_command")
    replay_p = fuzz_sub.add_parser(
        "replay", help="re-run one reproducer JSON under the monitors"
    )
    replay_p.add_argument("file", help="reproducer JSON (see tests/corpus/)")
    replay_p.set_defaults(func=cmd_fuzz)

    runs_p = sub.add_parser(
        "runs",
        help="query the persistent run registry (ledger of past runs)",
    )
    runs_sub = runs_p.add_subparsers(dest="runs_command", required=True)

    def runs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--registry", required=True, metavar="PATH",
                       help="run registry file (.jsonl or SQLite)")
        p.set_defaults(func=cmd_runs)

    list_p = runs_sub.add_parser("list", help="list recorded runs")
    runs_common(list_p)
    list_p.add_argument("--app", default=None, choices=ALL_APPS)
    list_p.add_argument("--variant", default=None,
                        help="filter by variant (or 'differential')")
    list_p.add_argument("--kind", default=None,
                        help="filter by record kind (run, sweep-cell, ...)")
    list_p.add_argument("--chaos", default=None, metavar="KEY",
                        help="filter by chaos key ('none', a profile name, "
                             "or a fuzz plan key)")
    list_p.add_argument("--limit", type=int, default=None, metavar="N")

    show_p = runs_sub.add_parser("show", help="dump one record as JSON")
    runs_common(show_p)
    show_p.add_argument("run", help="run id (unique prefix ok)")

    diff_p = runs_sub.add_parser(
        "diff", help="compare identity, metrics and tunables of two runs"
    )
    runs_common(diff_p)
    diff_p.add_argument("run_a", help="run id (unique prefix ok)")
    diff_p.add_argument("run_b", help="run id (unique prefix ok)")

    sim_p = runs_sub.add_parser(
        "similar", help="nearest past runs by config + stall profile"
    )
    runs_common(sim_p)
    sim_p.add_argument("run", help="run id (unique prefix ok)")
    sim_p.add_argument("--limit", type=int, default=5, metavar="N")

    lin_p = runs_sub.add_parser(
        "lineage", help="show a record's ancestors and descendants"
    )
    runs_common(lin_p)
    lin_p.add_argument("run", help="run id (unique prefix ok)")

    gc_p = runs_sub.add_parser(
        "gc", help="prune old runs, keeping N per baseline population"
    )
    runs_common(gc_p)
    gc_p.add_argument("--keep", type=int, default=20, metavar="N",
                      help="records to keep per (app, variant, kind, chaos, "
                           "params) population")
    gc_p.add_argument("--dry-run", action="store_true", dest="dry_run",
                      help="report what would be pruned without writing")

    reg_p = runs_sub.add_parser(
        "regressions",
        help="flag runs drifting from their matched baseline population "
             "(exit 1 when any regression is found)",
    )
    runs_common(reg_p)
    reg_p.add_argument("--run", default=None, metavar="RUN",
                       help="check only this run (id prefix ok); default: "
                            "check every leaf run against its own baseline")
    reg_p.add_argument("--match", default=None, metavar="K1,K2",
                       help="baseline match keys (subset of "
                            "app,variant,kind,chaos,params); default: all")
    reg_p.add_argument("--min-baseline", type=int, default=3,
                       metavar="N", dest="min_baseline",
                       help="minimum baseline population size before a "
                            "metric is judged")

    pp_p = sub.add_parser("paper", help="print the paper's numbers")
    pp_p.set_defaults(func=cmd_paper)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # A library failure is a usage/runtime condition, not a crash:
        # one line on stderr, exit status 1, no traceback at the user.
        print(f"repro: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (`repro runs show ... | head`).
        # Point stdout at devnull so interpreter shutdown does not try
        # to flush the dead pipe and print its own noise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
