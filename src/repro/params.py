"""System-wide configuration parameters.

The defaults model the paper's evaluation platform (Section 4):

* an AlphaStation 255 with a 233 MHz processor;
* four HP C2247 disks (15 ms average access time) behind a striping
  pseudodevice with a 64 KB striping unit;
* a 12 MB file cache managed by TIP (or, for baselines, by the stock
  Unified Buffer Cache with sequential read-ahead capped at 64 blocks);
* 8 KB file system blocks (the Digital UNIX block size).

Workloads in this reproduction are scaled down roughly 8x from the paper's
(see DESIGN.md section 2), so harness configurations usually also scale the
file cache with :func:`scaled_cache_blocks`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

# File system geometry -------------------------------------------------------

#: Digital UNIX file system block size in bytes.
BLOCK_SIZE = 8192

#: Striping unit of the paper's striping pseudodevice, in bytes.
STRIPE_UNIT = 65536

#: Blocks per stripe unit.
BLOCKS_PER_STRIPE_UNIT = STRIPE_UNIT // BLOCK_SIZE

#: Page size used for footprint accounting (Table 6).
PAGE_SIZE = 8192


@dataclass(frozen=True)
class CpuParams:
    """Processor model parameters."""

    #: Clock frequency in Hz (233 MHz AlphaStation 255).
    hz: int = 233_000_000

    #: Cycles charged for a system call trap + return.
    syscall_cycles: int = 400

    #: Cycles the original thread spends checking the next hint-log entry
    #: before each read call (observable overhead, Section 3.2.2).
    hintlog_check_cycles: int = 60

    #: Cycles the original thread spends saving its registers and setting the
    #: restart flag when it detects off-track speculation.
    restart_request_cycles: int = 250

    #: One-time cycles for the initialization routine that (among other
    #: things) spawns the speculating thread (Section 4.3).
    spec_init_cycles: int = 120_000

    #: Context switch cost when the scheduler changes threads.
    context_switch_cycles: int = 150

    #: Cycles per byte to copy read data from the file cache to the
    #: application's buffer (bcopy bandwidth of the platform).
    read_copy_cycles_per_byte: float = 0.5

    #: Cycles per byte for write() data copies (write-behind: no disk wait).
    write_copy_cycles_per_byte: float = 0.5

    #: Path lookup cost for open() (metadata I/O is not simulated;
    #: the TIP benchmarks hint only data reads).
    namei_cycles: int = 2_000

    #: Extra cycles for a hint ioctl beyond the syscall trap.
    hint_call_cycles: int = 150

    #: Cycles to service a page reclaim (referenced page resident but not
    #: physically mapped — OS intervention, no disk access).
    page_reclaim_cycles: int = 500

    #: Cycles to service a (soft) page fault on first touch.
    page_fault_cycles: int = 1_800

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds on this processor."""
        return cycles / self.hz

    def cycles(self, seconds: float) -> int:
        """Convert seconds to (rounded) cycles on this processor."""
        return int(round(seconds * self.hz))


@dataclass(frozen=True)
class DiskParams:
    """Model of one HP C2247-class disk.

    The paper quotes a 15 ms average access time.  We split that into a
    positioning component (seek + rotation) charged for non-sequential
    accesses and a per-block transfer component.  Sequential accesses that
    hit the drive's track buffer skip positioning and transfer at the track
    buffer rate, mirroring the footnote in Section 4.8.
    """

    #: Average positioning time (seek + rotational latency), seconds.
    positioning_s: float = 0.012

    #: Sustained media transfer rate, bytes/second.
    transfer_bps: float = 4_000_000.0

    #: Transfer rate when a read is serviced from the track buffer.
    track_buffer_bps: float = 10_000_000.0

    #: Number of blocks the drive reads ahead into its track buffer after
    #: servicing a request.
    track_readahead_blocks: int = 16

    #: Fixed per-request controller/command overhead, seconds.
    overhead_s: float = 0.0005

    def media_transfer_s(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from the platter."""
        return nbytes / self.transfer_bps

    def buffer_transfer_s(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from the track buffer."""
        return nbytes / self.track_buffer_bps

    @staticmethod
    def scaled(time_scale: float) -> "DiskParams":
        """A disk that is ``time_scale`` times faster in every dimension.

        The harness scales disk time with the (~8x smaller) workloads so
        that the ratio of per-stall speculation progress to total run
        length stays near the paper's; otherwise a single 12 ms stall would
        let the speculating thread pre-execute a large fraction of a scaled
        benchmark, which the paper's full-size runs do not allow.
        """
        base = DiskParams()
        return DiskParams(
            positioning_s=base.positioning_s / time_scale,
            transfer_bps=base.transfer_bps * time_scale,
            track_buffer_bps=base.track_buffer_bps * time_scale,
            track_readahead_blocks=base.track_readahead_blocks,
            overhead_s=base.overhead_s / time_scale,
        )


@dataclass(frozen=True)
class ArrayParams:
    """Striped disk array parameters."""

    #: Number of disks in the array (paper default: 4).
    ndisks: int = 4

    #: Striping unit in bytes (paper default: 64 KB).
    stripe_unit: int = STRIPE_UNIT

    #: Multiplier applied to I/O completion *notification* times, used by
    #: Figure 6 to simulate a widening processor/disk speed gap.  1.0 means
    #: no delay.
    completion_delay_factor: float = 1.0

    #: If positive, limit the number of outstanding *prefetch* requests per
    #: disk (the paper sets this to 1 for the Figure 6 simulation).
    max_prefetches_per_disk: int = 0

    # -- degraded-mode policy (only exercised under fault injection) --------

    #: Maximum service attempts for a demand read before the array gives up
    #: and surfaces :class:`~repro.errors.RetriesExhausted`.
    retry_max_attempts: int = 12

    #: Maximum service attempts for a prefetch; an exhausted prefetch is
    #: dropped silently (degrades to the unhinted baseline, never an error).
    prefetch_retry_attempts: int = 2

    #: Backoff before the first retry, in cycles; doubles (see multiplier)
    #: each further attempt so retries ride out offline windows.
    retry_backoff_cycles: int = 50_000

    #: Exponential backoff growth factor.
    retry_backoff_multiplier: float = 2.0

    #: Per-request timeout in cycles; a request not notified within this
    #: bound is aborted at the disk and retried.  Only armed while a fault
    #: injector is attached (0 disables).  ~0.5 s at the paper's 233 MHz.
    request_timeout_cycles: int = 120_000_000

    # -- redundancy / degraded mode -----------------------------------------

    #: Redundancy scheme: "none" (the paper's plain striping) or "parity"
    #: (RAID-5-style rotating parity; any single-disk loss is survivable).
    #: Parity changes the block layout, so it is strictly opt-in — the
    #: harness enables it automatically for fault plans with a dead disk.
    redundancy: str = "none"

    #: Spare disks appended to the array; a dead disk's contents are
    #: resilvered onto a spare by the background rebuild engine.
    hot_spares: int = 0

    #: Fraction of a rebuilt row's service time the rebuild engine is
    #: allowed to consume — the rest is idle, yielding the disks to demand
    #: traffic.  1.0 rebuilds flat-out; small values rebuild gently.
    rebuild_bandwidth_share: float = 0.25

    #: Arm a hedged (duplicate, reconstruction-path) read this many cycles
    #: after a demand read is dispatched; first completion wins and the
    #: loser is cancelled.  0 disables.  Requires parity and an injector.
    hedge_after_cycles: int = 0

    #: Fixed CPU cost charged for XOR-ing one block back together from its
    #: parity row (reconstruction and rebuild both pay it).
    reconstruct_xor_cycles: int = 4096


@dataclass(frozen=True)
class CacheParams:
    """File cache parameters."""

    #: Capacity in blocks.  The paper's default cache is 12 MB = 1536 blocks
    #: of 8 KB; scaled harness configs shrink this with the workloads.
    capacity_blocks: int = 1536

    #: Maximum read-ahead window of the sequential read-ahead policy, in
    #: blocks ("up to a maximum of 64 blocks", Section 4).
    max_readahead_blocks: int = 64


@dataclass(frozen=True)
class TipParams:
    """TIP cost-benefit manager parameters."""

    #: Prefetch horizon: the deepest point in a process's hint queue that
    #: TIP will prefetch toward.  Patterson's thesis derives this from the
    #: ratio of disk time to per-access CPU time; we expose it directly.
    prefetch_horizon: int = 96

    #: Below this measured hint accuracy, TIP halves the prefetch depth it
    #: will pursue for the offending process's hints.
    accuracy_discount_threshold: float = 0.85

    #: If True, TIP ignores all hints and behaves exactly like the baseline
    #: UBC manager (used for Figure 4).
    ignore_hints: bool = False

    #: Maximum hinted prefetches TIP keeps in flight per disk.
    max_inflight_per_disk: int = 4

    #: While the array is degraded or rebuilding, scale the prefetch depth
    #: TIP pursues by this factor (load shedding: demand and rebuild
    #: traffic win; speculation is only ever a performance hint).
    degraded_horizon_factor: float = 0.25

    #: Per-disk in-flight prefetch cap while degraded (0 = keep the normal
    #: cap).
    degraded_max_inflight_per_disk: int = 1


@dataclass(frozen=True)
class SpecHintParams:
    """SpecHint transformation and runtime parameters."""

    #: Software copy-on-write region size in bytes.  The paper explored
    #: 128 B - 8192 B and settled on 1024 B (Section 3.2.1).
    cow_region_size: int = 1024

    #: Cycles added by the COW check wrapped around each shadow-code load.
    cow_load_check_cycles: int = 5

    #: Cycles added by the COW check wrapped around each shadow-code store.
    cow_store_check_cycles: int = 7

    #: Cycles per byte to copy a region the first time it is written.
    cow_copy_cycles_per_byte: float = 0.25

    #: Cycles per byte the speculating thread spends copying the original
    #: thread's stack when restarting speculation.
    restart_stack_copy_cycles_per_byte: float = 0.25

    #: Fixed cycles for the rest of the restart bookkeeping (cancel call,
    #: clearing the COW map, reloading registers).
    restart_fixed_cycles: int = 4000

    #: Divisor applied to COW check costs inside the hand-optimized shadow
    #: string routines (strncpy/memcpy analogues, Section 3.3).
    optimized_stdlib_check_divisor: int = 8

    #: How many instructions the speculating thread executes between polls
    #: of the restart flag.
    restart_poll_interval: int = 32

    #: Throttle (Section 5 future work): after this many CANCEL_ALL calls,
    #: disable speculation for ``throttle_disable_reads`` read calls.  0
    #: disables the throttle (the paper's default configuration).
    throttle_cancel_limit: int = 0

    #: Number of original-thread read calls for which speculation stays
    #: disabled once the throttle trips.
    throttle_disable_reads: int = 32

    # -- speculation watchdog (see repro.faults.watchdog) -------------------

    #: Consecutive restarts with no hint-log match in between before the
    #: watchdog disables speculation for the rest of the run.  0 disables
    #: this trigger.  Paper benchmarks never reach the default.
    watchdog_restart_limit: int = 64

    #: Cumulative speculative faults (signals) before the watchdog trips.
    #: 0 disables this trigger.
    watchdog_fault_limit: int = 256

    #: Sliding-window hint-log match fraction below which the watchdog
    #: trips (evaluated only once the window is full).  0.0 disables.
    watchdog_min_accuracy: float = 0.02

    #: Number of recent hint-log checks in the accuracy window.
    watchdog_accuracy_window: int = 256

    #: Degraded-mode policy: suspend speculation (resumably, unlike a
    #: watchdog trip) while the storage array is degraded or rebuilding,
    #: so speculative prefetch load never competes with reconstruction
    #: and rebuild traffic.
    watchdog_suspend_when_degraded: bool = True

    # -- isolation auditor (see repro.spechint.auditor) ---------------------

    #: Enable the isolation auditor: COW containment checks, the
    #: tamper-evident audit table of suppressed syscalls, and the
    #: restart-boundary digest of non-shadow state.
    isolation_audit: bool = True

    #: Retained audit records; older records fold into the chain anchor
    #: (the hash chain stays verifiable end to end).
    audit_table_capacity: int = 1024

    #: Quarantine length, in original-thread read calls, after the first
    #: isolation violation; doubles with each further violation.
    quarantine_base_reads: int = 64

    #: Violations after which the quarantine becomes permanent for the
    #: rest of the run (generalizes the watchdog's one-way disable).
    quarantine_max_violations: int = 3


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated machine."""

    cpu: CpuParams = dataclasses.field(default_factory=CpuParams)
    disk: DiskParams = dataclasses.field(default_factory=DiskParams)
    array: ArrayParams = dataclasses.field(default_factory=ArrayParams)
    cache: CacheParams = dataclasses.field(default_factory=CacheParams)
    tip: TipParams = dataclasses.field(default_factory=TipParams)
    spechint: SpecHintParams = dataclasses.field(default_factory=SpecHintParams)

    #: Number of CPUs.  1 reproduces the paper; 2 enables the Section 5
    #: multiprocessor extension (speculating thread runs concurrently).
    ncpus: int = 1

    #: RNG seed for every stochastic component (disk layout jitter, dataset
    #: generation uses its own seeds in the workload generators).
    seed: int = 1999

    def replace(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)


def cache_blocks_for_bytes(nbytes: int) -> int:
    """Number of cache blocks covering ``nbytes``."""
    return max(1, nbytes // BLOCK_SIZE)


def scaled_cache_blocks(paper_mb: float, scale: float = 8.0) -> int:
    """Cache capacity in blocks for a paper cache of ``paper_mb`` megabytes.

    Workloads in this reproduction are scaled down by ``scale`` relative to
    the paper's, so a paper 12 MB cache becomes 12/8 = 1.5 MB here.
    """
    return max(8, int(paper_mb * 1024 * 1024 / scale) // BLOCK_SIZE)
