"""Single-disk model.

Each disk services one request at a time from a two-level queue (demand
requests ahead of prefetches).  Service time has three regimes:

* **track-buffer hit** — the block was read ahead into the drive's buffer by
  a previous access: command overhead + buffer-rate transfer;
* **sequential** — the block immediately follows the last media access: no
  positioning, media-rate transfer;
* **random** — full positioning (seek + rotation) + media-rate transfer.

After every media access the drive reads the following
``track_readahead_blocks`` blocks into its track buffer, which is how the
paper's footnote about "faster than modelled transfer rate" for physically
sequential accesses arises.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.errors import InvalidBlockError
from repro.params import BLOCK_SIZE, CpuParams, DiskParams
from repro.sim.engine import Event, EventEngine
from repro.sim.metrics import DISK_PREFIX
from repro.sim.stats import StatRegistry
from repro.storage.request import IORequest
from repro.trace.tracer import CAT_STORAGE, NULL_TRACER, TID_DISK_BASE, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


class Disk:
    """One simulated disk drive."""

    def __init__(
        self,
        disk_id: int,
        nblocks: int,
        params: DiskParams,
        cpu: CpuParams,
        engine: EventEngine,
        stats: StatRegistry,
        on_finish: Callable[[IORequest], None],
        injector: Optional["FaultInjector"] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if nblocks <= 0:
            raise InvalidBlockError(f"disk {disk_id} must have >0 blocks, got {nblocks}")
        self.disk_id = disk_id
        self.nblocks = nblocks
        self.params = params
        self.cpu = cpu
        self.engine = engine
        self.stats = stats
        #: Called when the media access finishes (before any notification delay).
        self.on_finish = on_finish
        #: Fault oracle; None in fault-free runs (zero overhead, identical
        #: event stream to the pre-fault-injection simulator).
        self.injector = injector
        self.tracer = tracer
        self._trace_tid = TID_DISK_BASE + disk_id

        self._demand_queue: Deque[IORequest] = deque()
        self._prefetch_queue: Deque[IORequest] = deque()
        self._active: Optional[IORequest] = None
        self._active_event: Optional[Event] = None

        # Head / track-buffer state.
        self._last_media_block: int = -(10 ** 9)
        self._buffer_start: int = 0
        self._buffer_end: int = 0  # exclusive; empty buffer when start == end

        # Per-disk counters.
        self._prefix = f"{DISK_PREFIX}{disk_id}."

    # -- queueing ----------------------------------------------------------

    def submit(self, request: IORequest) -> None:
        """Accept a request; starts immediately if the disk is idle."""
        if not 0 <= request.physical_block < self.nblocks:
            raise InvalidBlockError(
                f"block {request.physical_block} outside disk {self.disk_id} "
                f"(size {self.nblocks})"
            )
        request.submit_time = self.engine.clock.now
        if request.is_demand:
            self._demand_queue.append(request)
        else:
            self._prefetch_queue.append(request)
        self.stats.counter(self._prefix + "submitted").add()
        if self.tracer.enabled:
            self._sample_queue_depth()
        self._maybe_start()

    @property
    def busy(self) -> bool:
        """True while a request is being serviced."""
        return self._active is not None

    @property
    def queued(self) -> int:
        """Requests waiting (not counting the active one)."""
        return len(self._demand_queue) + len(self._prefetch_queue)

    def queued_prefetches(self) -> int:
        """Waiting prefetch requests (used by the per-disk prefetch limit)."""
        return len(self._prefetch_queue)

    def promote_queued(self, lbn: int) -> bool:
        """Move a queued prefetch for ``lbn`` to the demand queue.

        Returns True if a queued request was found and promoted.  The active
        request cannot be re-prioritized (it is already on the media).
        """
        for i, request in enumerate(self._prefetch_queue):
            if request.lbn == lbn:
                del self._prefetch_queue[i]
                request.promote_to_demand()
                self._demand_queue.append(request)
                return True
        return False

    # -- service -----------------------------------------------------------

    def _maybe_start(self) -> None:
        if self._active is not None:
            return
        if self._demand_queue:
            request = self._demand_queue.popleft()
        elif self._prefetch_queue:
            request = self._prefetch_queue.popleft()
        else:
            return
        self._active = request
        request.start_time = self.engine.clock.now
        service_cycles = self._service_cycles(request.physical_block)
        fault: Optional[str] = None
        if self.injector is not None:
            service_cycles, fault = self.injector.on_disk_service(
                self.disk_id, request, service_cycles
            )
            if fault is not None:
                self.stats.counter(self._prefix + "faulted_accesses").add()
        self.stats.counter(self._prefix + "accesses").add()
        self.stats.distribution(self._prefix + "service_cycles").observe(service_cycles)
        self._active_event = self.engine.schedule_after(
            service_cycles,
            lambda: self._finish(request, fault),
            label=f"disk{self.disk_id}:finish lbn={request.lbn}",
        )

    def _service_cycles(self, block: int) -> int:
        p = self.params
        if self._buffer_start <= block < self._buffer_end:
            # Track-buffer hit: no media access, no buffer refill.
            seconds = p.overhead_s + p.buffer_transfer_s(BLOCK_SIZE)
            self.stats.counter(self._prefix + "buffer_hits").add()
        elif block == self._last_media_block + 1:
            seconds = p.overhead_s + p.media_transfer_s(BLOCK_SIZE)
            self._after_media_access(block)
            self.stats.counter(self._prefix + "sequential_accesses").add()
        else:
            seconds = p.overhead_s + p.positioning_s + p.media_transfer_s(BLOCK_SIZE)
            self._after_media_access(block)
            self.stats.counter(self._prefix + "random_accesses").add()
        return max(1, self.cpu.cycles(seconds))

    def _after_media_access(self, block: int) -> None:
        self._last_media_block = block
        self._buffer_start = block + 1
        self._buffer_end = min(self.nblocks, block + 1 + self.params.track_readahead_blocks)

    def _finish(self, request: IORequest, fault: Optional[str] = None) -> None:
        request.finish_time = self.engine.clock.now
        request.fault = fault
        self._active = None
        self._active_event = None
        if self.tracer.enabled:
            self.tracer.complete(
                CAT_STORAGE, "disk.service", request.start_time,
                request.finish_time - request.start_time,
                tid=self._trace_tid, lbn=request.lbn,
                kind=request.kind.value, fault=fault,
            )
            self._sample_queue_depth()
        self.on_finish(request)
        self._maybe_start()

    def _sample_queue_depth(self) -> None:
        """Counter sample: waiting requests + the in-service one."""
        depth = self.queued + (1 if self._active is not None else 0)
        self.tracer.counter(
            CAT_STORAGE, self._prefix + "queue_depth", depth,
            tid=self._trace_tid,
        )

    # -- aborts (per-request timeouts) --------------------------------------

    def abort(self, request: IORequest) -> bool:
        """Drop ``request`` wherever it is (queue or mid-service).

        Used by the striped array's per-request timeout.  Returns False when
        the request is not at this disk anymore (already finishing).
        """
        if self._active is request:
            if self._active_event is not None:
                self._active_event.cancel()
                self._active_event = None
            self._active = None
            self.stats.counter(self._prefix + "aborted").add()
            self._maybe_start()
            return True
        for queue in (self._demand_queue, self._prefetch_queue):
            for i, queued in enumerate(queue):
                if queued is request:
                    del queue[i]
                    self.stats.counter(self._prefix + "aborted").add()
                    return True
        return False
