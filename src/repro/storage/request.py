"""I/O request types shared by the striping device and the disks."""

from __future__ import annotations

import enum
from typing import Callable, Optional


class IOKind(enum.Enum):
    """Why a block is being fetched.

    The distinction matters for scheduling (demand reads bypass queued
    prefetches) and for the per-disk outstanding-prefetch limit used in the
    paper's Figure 6 simulation.
    """

    #: A read the application is stalled on right now.
    DEMAND = "demand"

    #: A read issued ahead of need (TIP hint-driven or sequential read-ahead).
    PREFETCH = "prefetch"


class IORequest:
    """One block read moving through the storage stack.

    Attributes
    ----------
    lbn:
        Logical block number in the striped address space.
    kind:
        Demand or prefetch.
    callback:
        Invoked (with the request) when the requesting layer is *notified*
        of completion — i.e. after any completion-delay factor.
    """

    __slots__ = (
        "lbn",
        "kind",
        "callback",
        "disk_id",
        "physical_block",
        "submit_time",
        "start_time",
        "finish_time",
        "notify_time",
        "done",
        "attempts",
        "fault",
        "failed",
        "timeout_event",
        "owner",
        "recon",
        "hedge",
        "hedge_event",
        "reconstructed",
    )

    _COUNTER = 0

    def __init__(
        self,
        lbn: int,
        kind: IOKind,
        callback: Optional[Callable[["IORequest"], None]] = None,
    ) -> None:
        self.lbn = lbn
        self.kind = kind
        self.callback = callback
        #: Filled in by the striping device.
        self.disk_id: int = -1
        self.physical_block: int = -1
        #: Cycle timestamps filled in as the request progresses.
        self.submit_time: int = -1
        self.start_time: int = -1
        self.finish_time: int = -1
        self.notify_time: int = -1
        self.done: bool = False
        #: Degraded-mode bookkeeping (only moves under fault injection).
        self.attempts: int = 1
        #: Fault kind of the current attempt ("transient"/"offline"/"timeout").
        self.fault: Optional[str] = None
        #: True once every allowed retry attempt has failed; callbacks run
        #: with ``failed`` set so upper layers can degrade (or surface it).
        self.failed: bool = False
        #: Pending per-request timeout event, cancelled on completion.
        self.timeout_event: Optional[object] = None
        #: Redundancy plumbing (None/False on the fault-free fast path).
        #: Internal child reads (reconstruction peers, rebuild I/O) carry
        #: the owning child-set here and bypass the normal completion path.
        self.owner: Optional[object] = None
        #: The reconstruction serving this request when its home disk is
        #: dead (degraded read).
        self.recon: Optional[object] = None
        #: The racing hedged reconstruction, if one is in flight.
        self.hedge: Optional[object] = None
        #: Pending hedge-arm event, cancelled on completion.
        self.hedge_event: Optional[object] = None
        #: True when the block was rebuilt from parity rather than read
        #: from its home disk.
        self.reconstructed: bool = False

    @property
    def is_demand(self) -> bool:
        return self.kind is IOKind.DEMAND

    def promote_to_demand(self) -> None:
        """Upgrade a queued prefetch to demand priority.

        Happens when the application blocks on a block whose prefetch is
        already queued — the paper's "partially prefetched" case begins here
        if the prefetch has already started.
        """
        self.kind = IOKind.DEMAND

    def __repr__(self) -> str:
        return (
            f"IORequest(lbn={self.lbn}, kind={self.kind.value}, "
            f"disk={self.disk_id}, done={self.done})"
        )
