"""Disk array substrate.

Models the paper's I/O system: HP C2247-class disks (15 ms average access
time, track-buffer read-ahead) attached behind a striping pseudodevice with a
64 KB striping unit.  The striping device also implements the two knobs the
paper uses for its Figure 6 simulation: delaying completion notification to
simulate a widening processor/disk speed gap, and limiting outstanding
prefetches per disk.
"""

from repro.storage.disk import Disk
from repro.storage.request import IOKind, IORequest
from repro.storage.striping import StripedArray

__all__ = ["Disk", "IOKind", "IORequest", "StripedArray"]
