"""Background rebuild: resilvering a dead disk onto a hot spare.

When the array observes a permanent disk death it assigns a free hot spare
and starts a :class:`RebuildEngine`.  The engine walks the dead disk's
physical blocks sequentially, reconstructing each from the parity row
(same-index reads on every surviving disk + the XOR cost) and writing the
result to the spare.  Everything runs on the sim clock through the normal
disk queues, so rebuild traffic competes with — and yields to — demand
I/O:

* reconstruction reads and spare writes are issued at *prefetch* priority,
  so demand requests win at every disk queue;
* between rows the engine idles long enough that reconstruction consumes
  roughly ``rebuild_bandwidth_share`` of wall time (share = 1 means flat
  out, share = 0.25 means ~3 cycles idle per busy cycle).

The *watermark* (first un-resilvered physical block) lets the array start
redirecting reads below it to the spare while the rebuild is still
running.  A second death during the rebuild makes the next row
unreconstructable: the engine raises :class:`~repro.errors.DataLossError`
loudly rather than silently skipping rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DataLossError, DiskFaultError
from repro.faults.injector import FAULT_DATA_LOSS
from repro.sim import metrics
from repro.trace.tracer import CAT_STORAGE, TID_DISK_BASE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.striping import StripedArray, _ChildSet


class RebuildEngine:
    """Resilvers one dead disk onto one hot spare, block by block."""

    def __init__(
        self,
        array: "StripedArray",
        dead_disk: int,
        spare_id: int,
        share: float,
    ) -> None:
        self.array = array
        self.dead_disk = dead_disk
        self.spare_id = spare_id
        #: Fraction of wall time the rebuild may consume (clamped to (0, 1]).
        self.share = min(1.0, max(0.01, share))
        self.total_blocks = array.disks[dead_disk].nblocks
        #: First physical block not yet resilvered; blocks below it can be
        #: served from the spare.
        self.watermark = 0
        self.complete = False
        self.started_at = array.engine.clock.now
        self.completed_at = -1
        self._row_started_at = 0

    def covers(self, physical: int) -> bool:
        """Can the spare serve ``physical`` of the dead disk already?"""
        return self.complete or physical < self.watermark

    # -- the resilver loop ---------------------------------------------------

    def start(self) -> None:
        self.array.stats.counter(metrics.REBUILD_STARTED).add()
        if self.array.tracer.enabled:
            self.array.tracer.instant(
                CAT_STORAGE, f"rebuild.start disk{self.dead_disk}",
                tid=TID_DISK_BASE + self.spare_id,
                spare=self.spare_id, blocks=self.total_blocks,
            )
        self._next_row()

    def _next_row(self) -> None:
        if self.watermark >= self.total_blocks:
            self._finish()
            return
        self._row_started_at = self.array.engine.clock.now
        if not self.array.can_reconstruct(self.dead_disk, self.watermark):
            raise DataLossError(
                f"rebuild of disk {self.dead_disk} cannot reconstruct "
                f"physical block {self.watermark}: a second disk died "
                f"before resilvering finished (dead: "
                f"{sorted(self.array._dead_disks)})"
            )
        self.array.spawn_rebuild_read(
            self.dead_disk, self.watermark,
            on_complete=self._row_read,
            on_failed=self._row_failed,
        )

    def _row_read(self, recon: "_ChildSet") -> None:
        # Peers arrived and the XOR cost is paid: land it on the spare.
        self.array.spawn_spare_write(
            self.spare_id, self.watermark,
            on_complete=self._row_written,
            on_failed=self._write_failed,
            label=f"array:resilver disk{self.dead_disk} block={self.watermark}",
        )

    def _row_written(self, write_set: "_ChildSet") -> None:
        self.watermark += 1
        self.array.stats.counter(metrics.REBUILD_BLOCKS).add()
        if self.watermark >= self.total_blocks:
            self._finish()
            return
        # Bandwidth sharing: idle so this engine consumes ~share of time.
        elapsed = self.array.engine.clock.now - self._row_started_at
        idle = 0
        if self.share < 1.0:
            idle = int(elapsed * (1.0 - self.share) / self.share)
        self.array.engine.schedule_after(
            max(1, idle), self._next_row,
            label=f"rebuild:next disk{self.dead_disk}",
        )

    def _row_failed(self, recon: "_ChildSet", fault: str) -> None:
        if fault == FAULT_DATA_LOSS:
            raise DataLossError(
                f"rebuild of disk {self.dead_disk} lost physical block "
                f"{self.watermark}: a surviving peer died mid-reconstruction "
                f"(dead: {sorted(self.array._dead_disks)})"
            )
        raise DiskFaultError(
            f"rebuild of disk {self.dead_disk} exhausted retries reading "
            f"peers for physical block {self.watermark} ({fault})"
        )

    def _write_failed(self, write_set: "_ChildSet", fault: str) -> None:
        raise DiskFaultError(
            f"rebuild write of physical block {self.watermark} to spare "
            f"{self.spare_id} failed ({fault})"
        )

    def _finish(self) -> None:
        self.complete = True
        self.completed_at = self.array.engine.clock.now
        stats = self.array.stats
        stats.counter(metrics.REBUILD_COMPLETED).add()
        stats.counter(metrics.REBUILD_COMPLETED_CYCLE).add(self.completed_at)
        if self.array.tracer.enabled:
            self.array.tracer.instant(
                CAT_STORAGE, f"rebuild.complete disk{self.dead_disk}",
                tid=TID_DISK_BASE + self.spare_id,
                blocks=self.total_blocks,
                cycles=self.completed_at - self.started_at,
            )

    def __repr__(self) -> str:
        return (
            f"RebuildEngine(dead={self.dead_disk}, spare={self.spare_id}, "
            f"watermark={self.watermark}/{self.total_blocks}, "
            f"complete={self.complete})"
        )
