"""Rotating-parity (RAID-5-style) layout for the striping pseudodevice.

With ``n`` disks, each *parity row* holds ``n - 1`` data stripe units plus
one parity unit; the parity unit rotates across the disks (row ``r``'s
parity lives on disk ``r % n``), so parity update traffic is spread evenly
instead of bottlenecking a dedicated parity disk.

The simulator models timing, not bytes — file contents live in inodes, so
"reconstruction" here means issuing the real peer reads on the surviving
disks and charging the XOR cost, which is exactly what the latency model
needs.  Any single-disk loss is survivable: a lost block is the XOR of the
same physical block on every other disk in the array.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InvalidBlockError


class ParityGeometry:
    """Maps logical blocks onto a rotating-parity array."""

    def __init__(self, ndisks: int, blocks_per_unit: int) -> None:
        if ndisks < 2:
            raise InvalidBlockError(
                f"parity redundancy needs >=2 disks, got {ndisks}"
            )
        self.ndisks = ndisks
        self.blocks_per_unit = blocks_per_unit
        #: Data stripe units per parity row.
        self.data_units_per_row = ndisks - 1

    def physical_blocks_per_disk(self, nblocks: int) -> int:
        """Blocks each member disk must hold to cover ``nblocks`` logical
        blocks (every disk holds one unit — data or parity — per row)."""
        units = -(-nblocks // self.blocks_per_unit)  # ceil division
        rows = -(-units // self.data_units_per_row)
        return max(1, rows * self.blocks_per_unit)

    def map_block(self, lbn: int) -> Tuple[int, int]:
        """Map a logical block to (disk index, physical block on disk)."""
        unit = lbn // self.blocks_per_unit
        within = lbn % self.blocks_per_unit
        row = unit // self.data_units_per_row
        slot = unit % self.data_units_per_row
        parity_disk = row % self.ndisks
        # Data units fill the non-parity disks in increasing disk order.
        disk = slot if slot < parity_disk else slot + 1
        return disk, row * self.blocks_per_unit + within

    def parity_disk_of(self, physical_block: int) -> int:
        """Disk holding the parity unit of ``physical_block``'s row."""
        row = physical_block // self.blocks_per_unit
        return row % self.ndisks

    def peer_disks(self, disk: int) -> List[int]:
        """Disks whose same-physical-index block participates in ``disk``'s
        parity rows — i.e. every other member of the array.  Reading the
        same physical block on each of them and XOR-ing recovers the lost
        block, whether it was data or parity."""
        return [d for d in range(self.ndisks) if d != disk]
