"""Striping pseudodevice.

Presents a flat logical block address space striped across an array of
:class:`~repro.storage.disk.Disk` objects with a configurable striping unit
(the paper uses 64 KB = 8 file system blocks).

Two evaluation knobs from the paper's Section 4.8 live here:

* ``completion_delay_factor`` — completion *notification* is delayed so that
  the perceived service time is multiplied by the factor, simulating a
  widening gap between processor and disk speeds ("we doubled the time
  before the system was notified that each I/O request had completed");
* ``max_prefetches_per_disk`` — bounds outstanding prefetch requests per
  disk (the paper sets 1 for the Figure 6 experiments so the delayed
  notification has the intended effect on prefetch service time).

With ``redundancy="parity"`` the array lays blocks out in rotating-parity
rows (:mod:`repro.storage.parity`) and survives any single permanent disk
death: reads whose home disk is dead are *reconstructed* — the same
physical block is read on every surviving disk and XOR-ed back together on
the sim clock — while a background :class:`~repro.storage.rebuild.RebuildEngine`
resilvers the lost disk onto a hot spare.  Demand reads may additionally be
*hedged*: after ``hedge_after_cycles`` a duplicate reconstruction-path read
races the original request and the first completion wins (the loser is
cancelled).  All of it is strictly opt-in — the default geometry and the
fault-free event stream are bit-identical to the plain striping device.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    DataLossError,
    DiskFaultError,
    InvalidBlockError,
    IOTimeoutError,
    StorageError,
)
from repro.params import BLOCK_SIZE, ArrayParams, CpuParams, DiskParams
from repro.sim import metrics
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.disk import Disk
from repro.storage.parity import ParityGeometry
from repro.storage.rebuild import RebuildEngine
from repro.storage.request import IOKind, IORequest
from repro.trace.tracer import CAT_STORAGE, NULL_TRACER, TID_DISK_BASE, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

from repro.faults.injector import FAULT_DATA_LOSS, FAULT_DEAD


class _ChildSet:
    """A batch of internal child reads that jointly serve one purpose —
    the surviving-peer reads of a parity reconstruction, or a rebuild
    engine's I/O.  Children bypass the array's normal completion path
    (they are not ``_outstanding``); the array routes them back here."""

    __slots__ = (
        "children", "remaining", "cancelled", "xor_cycles",
        "on_complete", "on_failed", "label",
    )

    def __init__(
        self,
        xor_cycles: int,
        on_complete: Callable[["_ChildSet"], None],
        on_failed: Callable[["_ChildSet", str], None],
        label: str,
    ) -> None:
        self.children: List[IORequest] = []
        self.remaining = 0
        self.cancelled = False
        self.xor_cycles = xor_cycles
        self.on_complete = on_complete
        self.on_failed = on_failed
        self.label = label


class StripedArray:
    """The striping pseudodevice plus its member disks."""

    def __init__(
        self,
        nblocks: int,
        array: ArrayParams,
        disk_params: DiskParams,
        cpu: CpuParams,
        engine: EventEngine,
        stats: StatRegistry,
        injector: Optional["FaultInjector"] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if array.ndisks <= 0:
            raise InvalidBlockError(f"array needs >=1 disk, got {array.ndisks}")
        if array.stripe_unit % BLOCK_SIZE != 0:
            raise InvalidBlockError(
                f"stripe unit {array.stripe_unit} is not a multiple of the "
                f"{BLOCK_SIZE}-byte block size"
            )
        if array.redundancy not in ("none", "parity"):
            raise InvalidBlockError(
                f"unknown redundancy scheme {array.redundancy!r}; "
                f"expected 'none' or 'parity'"
            )
        self.array = array
        self.cpu = cpu
        self.engine = engine
        self.stats = stats
        self.injector = injector
        self.tracer = tracer
        self.blocks_per_unit = array.stripe_unit // BLOCK_SIZE
        self.nblocks = nblocks

        self.parity: Optional[ParityGeometry] = None
        if array.redundancy == "parity":
            self.parity = ParityGeometry(array.ndisks, self.blocks_per_unit)

        per_disk = self._physical_blocks_per_disk(nblocks)
        total_disks = array.ndisks + max(0, array.hot_spares)
        self.disks: List[Disk] = [
            Disk(i, per_disk, disk_params, cpu, engine, stats,
                 self._disk_finished, injector=injector, tracer=tracer)
            for i in range(total_disks)
        ]
        #: Spare disks (ids >= ndisks) not yet resilvering a dead disk.
        self._free_spares: List[int] = list(range(array.ndisks, total_disks))

        #: Observed permanent deaths: disk id -> rebuild engine (None when
        #: no spare was available; the array stays degraded for good).
        self._dead_disks: Dict[int, Optional[RebuildEngine]] = {}
        #: True once any block was declared unrecoverable.
        self.data_loss = False

        #: Hedge delay and rebuild share, overridable per fault plan.
        self._hedge_cycles = array.hedge_after_cycles
        self._rebuild_share = array.rebuild_bandwidth_share
        if injector is not None:
            plan = injector.plan
            if plan.hedge_after_s > 0.0:
                self._hedge_cycles = cpu.cycles(plan.hedge_after_s)
            if plan.rebuild_share > 0.0:
                self._rebuild_share = plan.rebuild_share

        #: Outstanding (submitted, unnotified) requests per lbn.  Demand and
        #: prefetch for the same block coalesce onto one request.
        self._outstanding: Dict[int, IORequest] = {}
        #: Prefetches held back by the per-disk prefetch limit.
        self._held_prefetches: List[Deque[IORequest]] = [
            deque() for _ in range(total_disks)
        ]
        self._inflight_prefetches: List[int] = [0] * total_disks

    # -- geometry ----------------------------------------------------------

    def _physical_blocks_per_disk(self, nblocks: int) -> int:
        if self.parity is not None:
            return self.parity.physical_blocks_per_disk(nblocks)
        units = -(-nblocks // self.blocks_per_unit)  # ceil division
        units_per_disk = -(-units // self.array.ndisks)
        return max(1, units_per_disk * self.blocks_per_unit)

    def map_block(self, lbn: int) -> Tuple[int, int]:
        """Map a logical block to (disk index, physical block on that disk)."""
        if lbn < 0 or lbn >= self.nblocks:
            raise InvalidBlockError(f"lbn {lbn} outside array of {self.nblocks} blocks")
        if self.parity is not None:
            return self.parity.map_block(lbn)
        unit = lbn // self.blocks_per_unit
        within = lbn % self.blocks_per_unit
        disk = unit % self.array.ndisks
        unit_on_disk = unit // self.array.ndisks
        return disk, unit_on_disk * self.blocks_per_unit + within

    def disk_of(self, lbn: int) -> int:
        """Disk index holding logical block ``lbn``."""
        return self.map_block(lbn)[0]

    # -- degraded-mode state -----------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while any dead disk is not yet fully resilvered.

        TIP and the SpecHint watchdog consult this to shed speculative
        load: while degraded, demand and rebuild traffic win.
        """
        for rebuild in self._dead_disks.values():
            if rebuild is None or not rebuild.complete:
                return True
        return False

    @property
    def rebuild_active(self) -> bool:
        """True while a rebuild engine is still resilvering."""
        return any(
            rebuild is not None and not rebuild.complete
            for rebuild in self._dead_disks.values()
        )

    @property
    def rebuilds(self) -> List[RebuildEngine]:
        """The rebuild engines started so far (complete or not)."""
        return [r for r in self._dead_disks.values() if r is not None]

    def _is_dead(self, disk_id: int) -> bool:
        return disk_id in self._dead_disks

    def _route(self, disk_id: int, physical: int) -> Optional[int]:
        """The disk that can serve ``(disk_id, physical)`` right now:
        the disk itself while alive, its spare once the block is
        resilvered, or None (reconstruction required)."""
        if disk_id not in self._dead_disks:
            return disk_id
        rebuild = self._dead_disks[disk_id]
        if rebuild is not None and rebuild.covers(physical):
            return rebuild.spare_id
        return None

    def _can_reconstruct(self, home_disk: int, physical: int) -> bool:
        """Can ``(home_disk, physical)`` be rebuilt from its parity row?"""
        if self.parity is None or home_disk >= self.array.ndisks:
            return False
        return all(
            self._route(peer, physical) is not None
            for peer in self.parity.peer_disks(home_disk)
        )

    def _note_disk_death(self, disk_id: int) -> None:
        """First observation of a permanent death: mark the disk dead,
        hand its held prefetches to the reconstruction path, and start
        resilvering onto a spare when one is free."""
        if disk_id in self._dead_disks or disk_id >= self.array.ndisks:
            return
        self._dead_disks[disk_id] = None
        self.stats.counter(metrics.ARRAY_DISK_DEATHS).add()
        if self.tracer.enabled:
            self.tracer.instant(
                CAT_STORAGE, f"disk{disk_id}.death",
                tid=TID_DISK_BASE + disk_id,
            )
        if self.parity is not None and self._free_spares:
            spare_id = self._free_spares.pop(0)
            rebuild = RebuildEngine(
                self, disk_id, spare_id, self._rebuild_share
            )
            self._dead_disks[disk_id] = rebuild
            rebuild.start()
        # Prefetches held for the dead disk can never dispatch there.
        held = self._held_prefetches[disk_id]
        while held:
            request = held.popleft()
            if self.parity is not None:
                self._start_degraded_read(request)
            else:
                self._fail_data_loss(request)

    # -- request path ------------------------------------------------------

    def submit(
        self,
        lbn: int,
        kind: IOKind,
        callback: Callable[[IORequest], None],
    ) -> IORequest:
        """Submit a block read; ``callback`` runs at notification time.

        A read for a block that is already outstanding coalesces: the new
        callback chains onto the existing request, and a demand read
        promotes a queued prefetch for the same block.
        """
        existing = self._outstanding.get(lbn)
        if existing is not None:
            self._chain_callback(existing, callback)
            if kind is IOKind.DEMAND and not existing.is_demand:
                self._promote(existing)
                self.stats.counter(metrics.ARRAY_DEMAND_COALESCED).add()
            return existing

        request = IORequest(lbn, kind, callback)
        disk_id, physical = self.map_block(lbn)
        request.disk_id = disk_id
        request.physical_block = physical
        self._outstanding[lbn] = request
        self.stats.counter(f"array.{kind.value}_submitted").add()

        if self._is_dead(disk_id):
            serving = self._route(disk_id, physical)
            if serving is None:
                self._start_degraded_read(request)
                return request
            request.disk_id = disk_id = serving

        limit = self.array.max_prefetches_per_disk
        if (
            kind is IOKind.PREFETCH
            and limit > 0
            and self._inflight_prefetches[disk_id] >= limit
        ):
            self._held_prefetches[disk_id].append(request)
            self.stats.counter(metrics.ARRAY_PREFETCHES_HELD).add()
            return request

        self._dispatch(request)
        return request

    def outstanding_for(self, lbn: int) -> Optional[IORequest]:
        """The in-flight request for ``lbn``, if any."""
        return self._outstanding.get(lbn)

    @property
    def total_outstanding(self) -> int:
        return len(self._outstanding)

    def _promote(self, request: IORequest) -> None:
        """Raise an outstanding prefetch to demand priority where possible."""
        if request.recon is not None:
            # Being reconstructed from peers: promote the surviving-peer
            # reads so the reconstruction finishes at demand priority.
            request.promote_to_demand()
            self._promote_reconstruction(request.recon)
            return
        if request.fault is not None:
            # Waiting out a retry backoff (not at any disk): flip the kind so
            # the resubmit dispatches at demand priority with demand retry
            # limits — a demand waiter must never ride a droppable prefetch.
            request.promote_to_demand()
            return
        disk_id = request.disk_id
        held = self._held_prefetches[disk_id]
        for i, held_request in enumerate(held):
            if held_request is request:
                # Never dispatched: send it straight to the disk as demand.
                del held[i]
                request.promote_to_demand()
                self.disks[disk_id].submit(request)
                return
        if self.disks[disk_id].promote_queued(request.lbn):
            # Was waiting in the disk's prefetch queue.
            self._inflight_prefetches[disk_id] -= 1
            request.kind = IOKind.DEMAND
            self._release_held(disk_id)
            return
        # Already on the media: the platters can't be re-prioritized, and
        # fault-free the attempt always completes, so leave it alone.  Under
        # fault injection the retry budget must still become demand's — a
        # blocked reader now waits on this request, so it may not be silently
        # dropped if the current attempt faults.
        if self.injector is not None:
            self._inflight_prefetches[disk_id] -= 1
            request.promote_to_demand()
            self._release_held(disk_id)

    def _promote_reconstruction(self, recon: _ChildSet) -> None:
        for child in recon.children:
            if child.is_demand:
                continue
            if not self.disks[child.disk_id].promote_queued(child.lbn):
                # In service (can't be re-prioritized) or in retry backoff
                # (the resubmit will enqueue at demand priority).
                child.promote_to_demand()

    def _dispatch(self, request: IORequest) -> None:
        if self._is_dead(request.disk_id):
            serving = self._route(request.disk_id, request.physical_block)
            if serving is None:
                # The home disk died while the request waited (held queue
                # or retry backoff): reconstruct instead.
                self._start_degraded_read(request)
                return
            request.disk_id = serving
        if request.kind is IOKind.PREFETCH:
            self._inflight_prefetches[request.disk_id] += 1
        self._arm_timeout(request)
        self._arm_hedge(request)
        self.disks[request.disk_id].submit(request)

    def _arm_timeout(self, request: IORequest) -> None:
        """Per-attempt request timeout; only armed under fault injection
        (fault-free runs keep a bit-identical event stream)."""
        timeout = self.array.request_timeout_cycles
        if self.injector is None or timeout <= 0:
            return
        request.timeout_event = self.engine.schedule_after(
            timeout,
            lambda: self._timeout_fired(request),
            label=f"array:timeout lbn={request.lbn}",
        )

    def _disarm_timeout(self, request: IORequest) -> None:
        event = request.timeout_event
        if event is not None:
            event.cancel()
            request.timeout_event = None

    def _timeout_fired(self, request: IORequest) -> None:
        request.timeout_event = None
        if request.done or request.fault is not None:
            return  # completed or already in the retry path
        if not self.disks[request.disk_id].abort(request):
            return  # finishing this very cycle; let completion win
        if request.kind is IOKind.PREFETCH:
            self._inflight_prefetches[request.disk_id] -= 1
            self._release_held(request.disk_id)
        request.fault = "timeout"
        self.stats.counter(metrics.ARRAY_TIMEOUTS).add()
        self.stats.counter(
            f"{metrics.DISK_PREFIX}{request.disk_id}."
            f"{metrics.DISK_TIMEOUTS_SUFFIX}"
        ).add()
        self._handle_fault(request)

    def _chain_callback(self, request: IORequest, callback: Callable[[IORequest], None]) -> None:
        previous = request.callback

        def chained(req: IORequest) -> None:
            if previous is not None:
                previous(req)
            callback(req)

        request.callback = chained

    # -- hedged reads --------------------------------------------------------

    def _arm_hedge(self, request: IORequest) -> None:
        """Arm a hedged duplicate for a demand read.  The hedge is a parity
        reconstruction racing the primary (only one copy of a block exists,
        so the duplicate must come from the peers).  Only armed under fault
        injection on a parity array."""
        if (
            self._hedge_cycles <= 0
            or self.injector is None
            or self.parity is None
            or not request.is_demand
            or request.hedge is not None
            or request.hedge_event is not None
        ):
            return
        request.hedge_event = self.engine.schedule_after(
            self._hedge_cycles,
            lambda: self._hedge_fired(request),
            label=f"array:hedge lbn={request.lbn}",
        )

    def _hedge_fired(self, request: IORequest) -> None:
        request.hedge_event = None
        if request.done or request.fault is not None:
            return  # completed, or the retry/death paths own it now
        if self._is_dead(request.disk_id):
            return  # the death path reroutes this request itself
        if not self._can_reconstruct(request.disk_id, request.physical_block):
            return
        self.stats.counter(metrics.ARRAY_HEDGES_ISSUED).add()
        self.stats.counter(
            f"{metrics.DISK_PREFIX}{request.disk_id}."
            f"{metrics.DISK_HEDGES_SUFFIX}"
        ).add()
        request.hedge = self._spawn_reconstruction(
            home_disk=request.disk_id,
            physical=request.physical_block,
            lbn=request.lbn,
            kind=IOKind.DEMAND,
            on_complete=lambda cs: self._hedge_completed(request),
            on_failed=lambda cs, fault: self._hedge_failed(request),
            label=f"array:hedge-reconstruct lbn={request.lbn}",
        )

    def _hedge_completed(self, request: IORequest) -> None:
        """The hedged reconstruction finished first: first-wins."""
        recon = request.hedge
        if recon is None or request.done:
            return
        if request.fault is None:
            # The primary is still at its disk; abort it there.
            if not self.disks[request.disk_id].abort(request):
                # Finishing this very cycle: let the primary win.
                request.hedge = None
                recon.cancelled = True
                return
        request.hedge = None
        recon.cancelled = True
        self._disarm_timeout(request)
        request.fault = None
        request.failed = False
        request.reconstructed = True
        self.stats.counter(metrics.ARRAY_HEDGES_WON).add()
        self.stats.counter(
            f"{metrics.DISK_PREFIX}{request.disk_id}."
            f"{metrics.DISK_HEDGES_WON_SUFFIX}"
        ).add()
        self._notify(request)

    def _hedge_failed(self, request: IORequest) -> None:
        """The hedged reconstruction lost (peer faults exhausted it)."""
        self.stats.counter(metrics.ARRAY_HEDGES_LOST).add()
        request.hedge = None
        if request.done:
            return
        if request.failed:
            # The primary exhausted its retries while the hedge raced;
            # the hedge was the last hope.
            self._fail_request(request)
            return
        if request.fault == FAULT_DEAD:
            # The primary's disk died while the hedge raced.
            self._redispatch_after_death(request)
        # Otherwise the primary is still working (at its disk or in
        # backoff) and finishes normally.

    def _cancel_hedge(self, request: IORequest) -> None:
        """The primary finished first: cancel the racing reconstruction."""
        recon = request.hedge
        request.hedge = None
        if recon is None:
            return
        recon.cancelled = True
        for child in recon.children:
            self.disks[child.disk_id].abort(child)
        self.stats.counter(metrics.ARRAY_HEDGES_CANCELLED).add()

    # -- parity reconstruction ----------------------------------------------

    def _spawn_reconstruction(
        self,
        home_disk: int,
        physical: int,
        lbn: int,
        kind: IOKind,
        on_complete: Callable[[_ChildSet], None],
        on_failed: Callable[[_ChildSet, str], None],
        label: str,
    ) -> _ChildSet:
        """Read ``physical`` on every surviving peer of ``home_disk``; when
        all arrive, charge the XOR cost and call ``on_complete``.  The
        caller must have checked :meth:`_can_reconstruct`."""
        recon = _ChildSet(
            max(1, self.array.reconstruct_xor_cycles),
            on_complete, on_failed, label,
        )
        assert self.parity is not None
        for peer in self.parity.peer_disks(home_disk):
            serving = self._route(peer, physical)
            assert serving is not None, "caller must check _can_reconstruct"
            child = IORequest(lbn, kind)
            child.disk_id = serving
            child.physical_block = physical
            child.owner = recon
            recon.children.append(child)
        recon.remaining = len(recon.children)
        for child in recon.children:
            self.disks[child.disk_id].submit(child)
        return recon

    def spawn_spare_write(
        self,
        spare_id: int,
        physical: int,
        on_complete: Callable[[_ChildSet], None],
        on_failed: Callable[[_ChildSet, str], None],
        label: str,
    ) -> _ChildSet:
        """One rebuild write landing a resilvered block on the spare."""
        write_set = _ChildSet(0, on_complete, on_failed, label)
        child = IORequest(-1, IOKind.PREFETCH)
        child.disk_id = spare_id
        child.physical_block = physical
        child.owner = write_set
        write_set.children.append(child)
        write_set.remaining = 1
        self.disks[spare_id].submit(child)
        return write_set

    def spawn_rebuild_read(
        self,
        dead_disk: int,
        physical: int,
        on_complete: Callable[[_ChildSet], None],
        on_failed: Callable[[_ChildSet, str], None],
    ) -> _ChildSet:
        """One rebuild row read: reconstruct ``physical`` of the dead disk
        at prefetch priority (demand traffic wins at every disk queue)."""
        return self._spawn_reconstruction(
            home_disk=dead_disk,
            physical=physical,
            lbn=-1,
            kind=IOKind.PREFETCH,
            on_complete=on_complete,
            on_failed=on_failed,
            label=f"array:rebuild disk{dead_disk} block={physical}",
        )

    def can_reconstruct(self, home_disk: int, physical: int) -> bool:
        """Public probe used by the rebuild engine."""
        return self._can_reconstruct(home_disk, physical)

    def _child_finished(self, child: IORequest) -> None:
        recon = child.owner
        assert isinstance(recon, _ChildSet)
        if recon.cancelled:
            return
        if child.fault is None:
            recon.remaining -= 1
            if recon.remaining == 0:
                if recon.xor_cycles > 0:
                    self.engine.schedule_after(
                        recon.xor_cycles,
                        lambda: self._child_set_complete(recon),
                        label=recon.label + ":xor",
                    )
                else:
                    self._child_set_complete(recon)
            return
        if child.fault == FAULT_DEAD:
            # A surviving peer died mid-reconstruction: the row is gone.
            self._note_disk_death(child.disk_id)
            self.data_loss = True
            self.stats.counter(metrics.FAULTS_DATA_LOSS).add()
            self._child_set_failed(recon, FAULT_DATA_LOSS)
            return
        # Transient/offline fault: retry with the demand backoff budget
        # (reconstruction always serves someone who is waiting).
        if child.attempts < max(1, self.array.retry_max_attempts):
            delay = int(
                self.array.retry_backoff_cycles
                * self.array.retry_backoff_multiplier ** (child.attempts - 1)
            )
            child.attempts += 1
            self.stats.counter(metrics.ARRAY_RETRIES).add()
            self.stats.counter(
                f"{metrics.DISK_PREFIX}{child.disk_id}."
                f"{metrics.DISK_RETRIES_SUFFIX}"
            ).add()
            self.engine.schedule_after(
                max(1, delay),
                lambda: self._resubmit_child(child),
                label=recon.label + ":retry",
            )
            return
        self._child_set_failed(recon, child.fault)

    def _resubmit_child(self, child: IORequest) -> None:
        recon = child.owner
        assert isinstance(recon, _ChildSet)
        if recon.cancelled:
            return
        if self._is_dead(child.disk_id):
            self._note_disk_death(child.disk_id)
            self.data_loss = True
            self.stats.counter(metrics.FAULTS_DATA_LOSS).add()
            self._child_set_failed(recon, FAULT_DATA_LOSS)
            return
        child.fault = None
        self.disks[child.disk_id].submit(child)

    def _child_set_failed(self, recon: _ChildSet, fault: str) -> None:
        recon.cancelled = True
        for child in recon.children:
            if child.fault is None:
                self.disks[child.disk_id].abort(child)
        recon.on_failed(recon, fault)

    def _child_set_complete(self, recon: _ChildSet) -> None:
        if recon.cancelled:
            return
        if recon.xor_cycles > 0:
            self.stats.counter(metrics.ARRAY_RECONSTRUCTED_BLOCKS).add()
        recon.on_complete(recon)

    # -- degraded reads ------------------------------------------------------

    def _start_degraded_read(self, request: IORequest) -> None:
        """Serve a read whose home disk is dead by reconstructing the block
        from the surviving peers (or declare data loss)."""
        if not self._can_reconstruct(request.disk_id, request.physical_block):
            self._fail_data_loss(request)
            return
        request.reconstructed = True
        self.stats.counter(metrics.ARRAY_DEGRADED_READS).add()
        request.recon = self._spawn_reconstruction(
            home_disk=request.disk_id,
            physical=request.physical_block,
            lbn=request.lbn,
            kind=request.kind,
            on_complete=lambda cs: self._degraded_read_done(request),
            on_failed=lambda cs, fault: self._degraded_read_failed(request, fault),
            label=f"array:reconstruct lbn={request.lbn}",
        )

    def _degraded_read_done(self, request: IORequest) -> None:
        if request.done:
            return
        request.recon = None
        self._notify(request)

    def _degraded_read_failed(self, request: IORequest, fault: str) -> None:
        request.recon = None
        request.fault = fault
        self._fail_request(request)

    def _fail_data_loss(self, request: IORequest) -> None:
        """No redundancy (or no survivors): the block is gone for good."""
        self.data_loss = True
        self.stats.counter(metrics.FAULTS_DATA_LOSS).add()
        request.fault = FAULT_DATA_LOSS
        if not request.is_demand:
            # Defer the drop to its own event: the prefetcher reacts to a
            # dropped prefetch by submitting the next one, which on a
            # multi-dead array may be unrecoverable too — failing it
            # synchronously would recurse through TIP once per pending
            # hint and overflow the stack.  Demand failures stay
            # synchronous so the typed DataLossError surfaces at the
            # faulting read() itself.
            self.engine.schedule_after(
                1,
                lambda: None if request.done else self._fail_request(request),
                label=f"array:data-loss lbn={request.lbn}",
            )
            return
        self._fail_request(request)

    def _redispatch_after_death(self, request: IORequest) -> None:
        """The request's home disk died under it: route to the spare if
        the block is already resilvered, else reconstruct from peers."""
        if request.hedge is not None:
            # A hedged reconstruction is already reading the survivors; it
            # completes (or fails over) this request — avoid duplicate work.
            request.fault = FAULT_DEAD
            return
        if self.parity is None:
            self._fail_data_loss(request)
            return
        request.fault = None
        serving = self._route(request.disk_id, request.physical_block)
        if serving is not None:
            request.disk_id = serving
            self._dispatch(request)
            return
        self._start_degraded_read(request)

    # -- completion path ----------------------------------------------------

    def _disk_finished(self, request: IORequest) -> None:
        if request.owner is not None:
            self._child_finished(request)
            return
        self._disarm_timeout(request)
        if request.kind is IOKind.PREFETCH:
            self._inflight_prefetches[request.disk_id] -= 1
            self._release_held(request.disk_id)

        if request.fault == FAULT_DEAD:
            self._note_disk_death(request.disk_id)
            self._redispatch_after_death(request)
            return
        if request.fault is not None:
            self._handle_fault(request)
            return

        if request.hedge is not None:
            self._cancel_hedge(request)

        factor = self.array.completion_delay_factor
        if factor > 1.0:
            service = request.finish_time - request.start_time
            delay = max(0, int(round(service * (factor - 1.0))))
            self.engine.schedule_after(
                delay,
                lambda: self._notify(request),
                label=f"array:delayed-notify lbn={request.lbn}",
            )
        else:
            self._notify(request)

    def _release_held(self, disk_id: int) -> None:
        limit = self.array.max_prefetches_per_disk
        held = self._held_prefetches[disk_id]
        while held and (limit <= 0 or self._inflight_prefetches[disk_id] < limit):
            self._dispatch(held.popleft())

    # -- degraded mode: retry with backoff / terminal failure ----------------

    def _retry_limit(self, request: IORequest) -> int:
        if request.is_demand:
            return max(1, self.array.retry_max_attempts)
        return max(1, self.array.prefetch_retry_attempts)

    def _handle_fault(self, request: IORequest) -> None:
        """One attempt failed (transient/offline error or timeout)."""
        self.stats.counter(metrics.ARRAY_FAULTED_ATTEMPTS).add()
        if request.attempts < self._retry_limit(request):
            delay = int(
                self.array.retry_backoff_cycles
                * self.array.retry_backoff_multiplier ** (request.attempts - 1)
            )
            request.attempts += 1
            self.stats.counter(metrics.ARRAY_RETRIES).add()
            self.stats.counter(
                f"{metrics.DISK_PREFIX}{request.disk_id}."
                f"{metrics.DISK_RETRIES_SUFFIX}"
            ).add()
            self.engine.schedule_after(
                max(1, delay),
                lambda: self._resubmit(request),
                label=f"array:retry lbn={request.lbn}",
            )
            return

        if request.hedge is not None:
            # The hedged reconstruction is still racing: it either
            # completes the request or fails it for good when it loses.
            request.failed = True
            return

        # Retries exhausted: notify with ``failed`` set.  Demand callers
        # surface RetriesExhausted; prefetch callers drop the block silently
        # and the read degrades to the unhinted baseline.
        self._fail_request(request)

    def _fail_request(self, request: IORequest) -> None:
        request.failed = True
        if request.is_demand:
            self.stats.counter(metrics.ARRAY_DEMAND_FAILURES).add()
        else:
            self.stats.counter(metrics.ARRAY_PREFETCHES_DROPPED).add()
        self._notify(request)

    def _resubmit(self, request: IORequest) -> None:
        if request.done:
            return
        request.fault = None
        self._dispatch(request)

    @staticmethod
    def failure_cause(request: IORequest) -> Exception:
        """The typed error behind a failed request (for raisers upstream)."""
        where = f"lbn={request.lbn} disk={request.disk_id}"
        if request.fault == FAULT_DATA_LOSS:
            return DataLossError(
                f"block {where} is unrecoverable: its disk died and the "
                f"parity row cannot be rebuilt from the survivors"
            )
        if request.fault == "timeout":
            return IOTimeoutError(f"request {where} timed out after "
                                  f"{request.attempts} attempts")
        return DiskFaultError(f"request {where} faulted "
                              f"({request.fault}) after {request.attempts} attempts")

    def _notify(self, request: IORequest) -> None:
        if request.hedge_event is not None:
            request.hedge_event.cancel()
            request.hedge_event = None
        if request.hedge is not None:
            self._cancel_hedge(request)
        request.notify_time = self.engine.clock.now
        request.done = True
        self._outstanding.pop(request.lbn, None)
        self.stats.counter(metrics.ARRAY_COMPLETED).add()
        if request.callback is not None:
            request.callback(request)

    # -- post-run drain ------------------------------------------------------

    def drain_rebuild(self) -> None:
        """Advance the sim clock until every active rebuild resilvers.

        The kernel's run loop exits when all processes do; a rebuild that
        outlives the workload finishes here, still on the sim clock, so
        its completion time is part of the run's deterministic results.
        """
        while self.rebuild_active:
            if not self.engine.advance_to_next():
                raise StorageError(
                    "rebuild stalled: event queue empty while a dead disk "
                    "is not fully resilvered"
                )
