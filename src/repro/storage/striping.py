"""Striping pseudodevice.

Presents a flat logical block address space striped across an array of
:class:`~repro.storage.disk.Disk` objects with a configurable striping unit
(the paper uses 64 KB = 8 file system blocks).

Two evaluation knobs from the paper's Section 4.8 live here:

* ``completion_delay_factor`` — completion *notification* is delayed so that
  the perceived service time is multiplied by the factor, simulating a
  widening gap between processor and disk speeds ("we doubled the time
  before the system was notified that each I/O request had completed");
* ``max_prefetches_per_disk`` — bounds outstanding prefetch requests per
  disk (the paper sets 1 for the Figure 6 experiments so the delayed
  notification has the intended effect on prefetch service time).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DiskFaultError, InvalidBlockError, IOTimeoutError
from repro.params import BLOCK_SIZE, ArrayParams, CpuParams, DiskParams
from repro.sim import metrics
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.disk import Disk
from repro.storage.request import IOKind, IORequest
from repro.trace.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


class StripedArray:
    """The striping pseudodevice plus its member disks."""

    def __init__(
        self,
        nblocks: int,
        array: ArrayParams,
        disk_params: DiskParams,
        cpu: CpuParams,
        engine: EventEngine,
        stats: StatRegistry,
        injector: Optional["FaultInjector"] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if array.ndisks <= 0:
            raise InvalidBlockError(f"array needs >=1 disk, got {array.ndisks}")
        if array.stripe_unit % BLOCK_SIZE != 0:
            raise InvalidBlockError(
                f"stripe unit {array.stripe_unit} is not a multiple of the "
                f"{BLOCK_SIZE}-byte block size"
            )
        self.array = array
        self.cpu = cpu
        self.engine = engine
        self.stats = stats
        self.injector = injector
        self.tracer = tracer
        self.blocks_per_unit = array.stripe_unit // BLOCK_SIZE
        self.nblocks = nblocks

        per_disk = self._physical_blocks_per_disk(nblocks)
        self.disks: List[Disk] = [
            Disk(i, per_disk, disk_params, cpu, engine, stats,
                 self._disk_finished, injector=injector, tracer=tracer)
            for i in range(array.ndisks)
        ]

        #: Outstanding (submitted, unnotified) requests per lbn.  Demand and
        #: prefetch for the same block coalesce onto one request.
        self._outstanding: Dict[int, IORequest] = {}
        #: Prefetches held back by the per-disk prefetch limit.
        self._held_prefetches: List[Deque[IORequest]] = [
            deque() for _ in range(array.ndisks)
        ]
        self._inflight_prefetches: List[int] = [0] * array.ndisks

    # -- geometry ----------------------------------------------------------

    def _physical_blocks_per_disk(self, nblocks: int) -> int:
        units = -(-nblocks // self.blocks_per_unit)  # ceil division
        units_per_disk = -(-units // self.array.ndisks)
        return max(1, units_per_disk * self.blocks_per_unit)

    def map_block(self, lbn: int) -> Tuple[int, int]:
        """Map a logical block to (disk index, physical block on that disk)."""
        if lbn < 0 or lbn >= self.nblocks:
            raise InvalidBlockError(f"lbn {lbn} outside array of {self.nblocks} blocks")
        unit = lbn // self.blocks_per_unit
        within = lbn % self.blocks_per_unit
        disk = unit % self.array.ndisks
        unit_on_disk = unit // self.array.ndisks
        return disk, unit_on_disk * self.blocks_per_unit + within

    def disk_of(self, lbn: int) -> int:
        """Disk index holding logical block ``lbn``."""
        return self.map_block(lbn)[0]

    # -- request path ------------------------------------------------------

    def submit(
        self,
        lbn: int,
        kind: IOKind,
        callback: Callable[[IORequest], None],
    ) -> IORequest:
        """Submit a block read; ``callback`` runs at notification time.

        A read for a block that is already outstanding coalesces: the new
        callback chains onto the existing request, and a demand read
        promotes a queued prefetch for the same block.
        """
        existing = self._outstanding.get(lbn)
        if existing is not None:
            self._chain_callback(existing, callback)
            if kind is IOKind.DEMAND and not existing.is_demand:
                self._promote(existing)
                self.stats.counter(metrics.ARRAY_DEMAND_COALESCED).add()
            return existing

        request = IORequest(lbn, kind, callback)
        disk_id, physical = self.map_block(lbn)
        request.disk_id = disk_id
        request.physical_block = physical
        self._outstanding[lbn] = request
        self.stats.counter(f"array.{kind.value}_submitted").add()

        limit = self.array.max_prefetches_per_disk
        if (
            kind is IOKind.PREFETCH
            and limit > 0
            and self._inflight_prefetches[disk_id] >= limit
        ):
            self._held_prefetches[disk_id].append(request)
            self.stats.counter(metrics.ARRAY_PREFETCHES_HELD).add()
            return request

        self._dispatch(request)
        return request

    def outstanding_for(self, lbn: int) -> Optional[IORequest]:
        """The in-flight request for ``lbn``, if any."""
        return self._outstanding.get(lbn)

    @property
    def total_outstanding(self) -> int:
        return len(self._outstanding)

    def _promote(self, request: IORequest) -> None:
        """Raise an outstanding prefetch to demand priority where possible."""
        if request.fault is not None:
            # Waiting out a retry backoff (not at any disk): flip the kind so
            # the resubmit dispatches at demand priority with demand retry
            # limits — a demand waiter must never ride a droppable prefetch.
            request.promote_to_demand()
            return
        disk_id = request.disk_id
        held = self._held_prefetches[disk_id]
        for i, held_request in enumerate(held):
            if held_request is request:
                # Never dispatched: send it straight to the disk as demand.
                del held[i]
                request.promote_to_demand()
                self.disks[disk_id].submit(request)
                return
        if self.disks[disk_id].promote_queued(request.lbn):
            # Was waiting in the disk's prefetch queue.
            self._inflight_prefetches[disk_id] -= 1
            request.kind = IOKind.DEMAND
            self._release_held(disk_id)
            return
        # Already on the media: the platters can't be re-prioritized, and
        # fault-free the attempt always completes, so leave it alone.  Under
        # fault injection the retry budget must still become demand's — a
        # blocked reader now waits on this request, so it may not be silently
        # dropped if the current attempt faults.
        if self.injector is not None:
            self._inflight_prefetches[disk_id] -= 1
            request.promote_to_demand()
            self._release_held(disk_id)

    def _dispatch(self, request: IORequest) -> None:
        if request.kind is IOKind.PREFETCH:
            self._inflight_prefetches[request.disk_id] += 1
        self._arm_timeout(request)
        self.disks[request.disk_id].submit(request)

    def _arm_timeout(self, request: IORequest) -> None:
        """Per-attempt request timeout; only armed under fault injection
        (fault-free runs keep a bit-identical event stream)."""
        timeout = self.array.request_timeout_cycles
        if self.injector is None or timeout <= 0:
            return
        request.timeout_event = self.engine.schedule_after(
            timeout,
            lambda: self._timeout_fired(request),
            label=f"array:timeout lbn={request.lbn}",
        )

    def _disarm_timeout(self, request: IORequest) -> None:
        event = request.timeout_event
        if event is not None:
            event.cancel()
            request.timeout_event = None

    def _timeout_fired(self, request: IORequest) -> None:
        request.timeout_event = None
        if request.done or request.fault is not None:
            return  # completed or already in the retry path
        if not self.disks[request.disk_id].abort(request):
            return  # finishing this very cycle; let completion win
        if request.kind is IOKind.PREFETCH:
            self._inflight_prefetches[request.disk_id] -= 1
            self._release_held(request.disk_id)
        request.fault = "timeout"
        self.stats.counter(metrics.ARRAY_TIMEOUTS).add()
        self._handle_fault(request)

    def _chain_callback(self, request: IORequest, callback: Callable[[IORequest], None]) -> None:
        previous = request.callback

        def chained(req: IORequest) -> None:
            if previous is not None:
                previous(req)
            callback(req)

        request.callback = chained

    # -- completion path ----------------------------------------------------

    def _disk_finished(self, request: IORequest) -> None:
        self._disarm_timeout(request)
        if request.kind is IOKind.PREFETCH:
            self._inflight_prefetches[request.disk_id] -= 1
            self._release_held(request.disk_id)

        if request.fault is not None:
            self._handle_fault(request)
            return

        factor = self.array.completion_delay_factor
        if factor > 1.0:
            service = request.finish_time - request.start_time
            delay = max(0, int(round(service * (factor - 1.0))))
            self.engine.schedule_after(
                delay,
                lambda: self._notify(request),
                label=f"array:delayed-notify lbn={request.lbn}",
            )
        else:
            self._notify(request)

    def _release_held(self, disk_id: int) -> None:
        limit = self.array.max_prefetches_per_disk
        held = self._held_prefetches[disk_id]
        while held and (limit <= 0 or self._inflight_prefetches[disk_id] < limit):
            self._dispatch(held.popleft())

    # -- degraded mode: retry with backoff / terminal failure ----------------

    def _retry_limit(self, request: IORequest) -> int:
        if request.is_demand:
            return max(1, self.array.retry_max_attempts)
        return max(1, self.array.prefetch_retry_attempts)

    def _handle_fault(self, request: IORequest) -> None:
        """One attempt failed (transient/offline error or timeout)."""
        self.stats.counter(metrics.ARRAY_FAULTED_ATTEMPTS).add()
        if request.attempts < self._retry_limit(request):
            delay = int(
                self.array.retry_backoff_cycles
                * self.array.retry_backoff_multiplier ** (request.attempts - 1)
            )
            request.attempts += 1
            self.stats.counter(metrics.ARRAY_RETRIES).add()
            self.engine.schedule_after(
                max(1, delay),
                lambda: self._resubmit(request),
                label=f"array:retry lbn={request.lbn}",
            )
            return

        # Retries exhausted: notify with ``failed`` set.  Demand callers
        # surface RetriesExhausted; prefetch callers drop the block silently
        # and the read degrades to the unhinted baseline.
        request.failed = True
        if request.is_demand:
            self.stats.counter(metrics.ARRAY_DEMAND_FAILURES).add()
        else:
            self.stats.counter(metrics.ARRAY_PREFETCHES_DROPPED).add()
        self._notify(request)

    def _resubmit(self, request: IORequest) -> None:
        if request.done:
            return
        request.fault = None
        self._dispatch(request)

    @staticmethod
    def failure_cause(request: IORequest) -> Exception:
        """The typed error behind a failed request (for raisers upstream)."""
        where = f"lbn={request.lbn} disk={request.disk_id}"
        if request.fault == "timeout":
            return IOTimeoutError(f"request {where} timed out after "
                                  f"{request.attempts} attempts")
        return DiskFaultError(f"request {where} faulted "
                              f"({request.fault}) after {request.attempts} attempts")

    def _notify(self, request: IORequest) -> None:
        request.notify_time = self.engine.clock.now
        request.done = True
        self._outstanding.pop(request.lbn, None)
        self.stats.counter(metrics.ARRAY_COMPLETED).add()
        if request.callback is not None:
            request.callback(request)
